//! Layer descriptions.
//!
//! A [`Layer`] carries exactly the quantities the rest of the system needs:
//! trainable parameter count (drives gradient-synchronisation traffic),
//! forward FLOPs and memory traffic (drive the roofline execution-time
//! model), and activation footprint (drives the GPU memory model). Shapes
//! themselves are consumed at construction time and not stored.

use serde::{Deserialize, Serialize};

/// Coarse layer category; used for reporting and for the §VI architecture
/// ablations (e.g. "remove batch norm").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d,
    /// Fully connected / projection.
    Linear,
    /// Batch normalization.
    BatchNorm,
    /// Layer normalization.
    LayerNorm,
    /// Elementwise activation (ReLU/GELU/...).
    Activation,
    /// Pooling.
    Pool,
    /// Token/position embedding table.
    Embedding,
    /// Multi-head self-attention + FFN block (transformer encoder layer).
    Attention,
    /// Residual (identity shortcut) addition.
    Residual,
}

const F32: f64 = 4.0;

/// One layer of a DNN, reduced to its cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Display name, e.g. `"conv3_2"`.
    pub name: String,
    /// Category.
    pub kind: LayerKind,
    /// Trainable parameters.
    pub params: u64,
    /// Per-sample forward FLOPs.
    pub flops_fwd: f64,
    /// Per-sample forward memory traffic in bytes (reads + writes).
    pub bytes_fwd: f64,
    /// Per-sample activation bytes this layer keeps alive for backward.
    pub activation_bytes: f64,
}

impl Layer {
    /// `true` when the layer owns trainable parameters (i.e. produces a
    /// gradient bucket under per-layer bucketing).
    #[must_use]
    pub fn has_params(&self) -> bool {
        self.params > 0
    }

    /// Gradient bytes this layer contributes per synchronisation (fp32).
    #[must_use]
    pub fn gradient_bytes(&self) -> f64 {
        self.params as f64 * F32
    }

    /// A 2-D convolution over a `c_in x h_in x w_in` input with a
    /// `k x k` kernel and the given stride ("same" padding).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn conv2d(
        name: impl Into<String>,
        c_in: u64,
        h_in: u64,
        w_in: u64,
        c_out: u64,
        k: u64,
        stride: u64,
    ) -> Layer {
        assert!(stride > 0, "stride must be positive");
        let h_out = h_in.div_ceil(stride);
        let w_out = w_in.div_ceil(stride);
        let params = c_in * c_out * k * k;
        let out_elems = c_out * h_out * w_out;
        let in_elems = c_in * h_in * w_in;
        Layer {
            name: name.into(),
            kind: LayerKind::Conv2d,
            params,
            flops_fwd: 2.0 * params as f64 * (h_out * w_out) as f64,
            bytes_fwd: (in_elems + out_elems + params) as f64 * F32,
            activation_bytes: out_elems as f64 * F32,
        }
    }

    /// A grouped 2-D convolution (depthwise when `groups == c_in`).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or does not divide both channel counts.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // mirrors torch.nn.Conv2d's signature
    pub fn conv2d_grouped(
        name: impl Into<String>,
        c_in: u64,
        h_in: u64,
        w_in: u64,
        c_out: u64,
        k: u64,
        stride: u64,
        groups: u64,
    ) -> Layer {
        assert!(
            groups > 0 && c_in.is_multiple_of(groups) && c_out.is_multiple_of(groups),
            "invalid group count"
        );
        let mut l = Layer::conv2d(name, c_in, h_in, w_in, c_out, k, stride);
        l.params /= groups;
        l.flops_fwd /= groups as f64;
        l.bytes_fwd = (c_in * h_in * w_in + c_out * (h_in / stride) * (w_in / stride)) as f64 * F32
            + l.params as f64 * F32;
        l
    }

    /// A fully connected layer (`in_features -> out_features`, with bias).
    #[must_use]
    pub fn linear(name: impl Into<String>, in_features: u64, out_features: u64) -> Layer {
        let params = in_features * out_features + out_features;
        Layer {
            name: name.into(),
            kind: LayerKind::Linear,
            params,
            flops_fwd: 2.0 * in_features as f64 * out_features as f64,
            bytes_fwd: (in_features + out_features + params) as f64 * F32,
            activation_bytes: out_features as f64 * F32,
        }
    }

    /// Batch normalization over `c` channels of an `h x w` map.
    #[must_use]
    pub fn batch_norm(name: impl Into<String>, c: u64, h: u64, w: u64) -> Layer {
        let elems = c * h * w;
        Layer {
            name: name.into(),
            kind: LayerKind::BatchNorm,
            params: 2 * c,
            flops_fwd: 4.0 * elems as f64,
            bytes_fwd: 2.0 * elems as f64 * F32,
            activation_bytes: elems as f64 * F32,
        }
    }

    /// Layer normalization over `features` (transformers).
    #[must_use]
    pub fn layer_norm(name: impl Into<String>, seq: u64, features: u64) -> Layer {
        let elems = seq * features;
        Layer {
            name: name.into(),
            kind: LayerKind::LayerNorm,
            params: 2 * features,
            flops_fwd: 5.0 * elems as f64,
            bytes_fwd: 2.0 * elems as f64 * F32,
            activation_bytes: elems as f64 * F32,
        }
    }

    /// Elementwise activation over `elems` elements (no parameters).
    /// Modelled as in-place (PyTorch `inplace=True` ReLU): it keeps no
    /// extra activation memory beyond the producing layer's output.
    #[must_use]
    pub fn activation(name: impl Into<String>, elems: u64) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Activation,
            params: 0,
            flops_fwd: elems as f64,
            bytes_fwd: 2.0 * elems as f64 * F32,
            activation_bytes: 0.0,
        }
    }

    /// Pooling from `c x h x w` with a window of `k` and stride `k`.
    #[must_use]
    pub fn pool(name: impl Into<String>, c: u64, h: u64, w: u64, k: u64) -> Layer {
        let in_elems = c * h * w;
        let out_elems = c * (h / k).max(1) * (w / k).max(1);
        Layer {
            name: name.into(),
            kind: LayerKind::Pool,
            params: 0,
            flops_fwd: in_elems as f64,
            bytes_fwd: (in_elems + out_elems) as f64 * F32,
            activation_bytes: out_elems as f64 * F32,
        }
    }

    /// Embedding lookup: `vocab x features` table over `seq` tokens.
    #[must_use]
    pub fn embedding(name: impl Into<String>, vocab: u64, features: u64, seq: u64) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Embedding,
            params: vocab * features,
            flops_fwd: (seq * features) as f64,
            bytes_fwd: 2.0 * (seq * features) as f64 * F32,
            activation_bytes: (seq * features) as f64 * F32,
        }
    }

    /// One transformer encoder layer: multi-head self-attention plus the
    /// feed-forward block, including its normalisations' parameters.
    ///
    /// Parameter count matches BERT exactly:
    /// `4·h² + 4h` (attention) `+ 2·h·ff + h + ff` (FFN) `+ 4h` (2 norms).
    #[must_use]
    pub fn attention(name: impl Into<String>, hidden: u64, ff: u64, heads: u64, seq: u64) -> Layer {
        let params = 4 * hidden * hidden + 4 * hidden + 2 * hidden * ff + hidden + ff + 4 * hidden;
        // Projections: 4 GEMMs of s x h x h; attention scores + context:
        // 2 GEMMs of s x s x h; FFN: 2 GEMMs of s x h x ff.
        let flops = 2.0
            * ((4 * seq * hidden * hidden) as f64
                + (2 * seq * seq * hidden) as f64
                + (2 * seq * hidden * ff) as f64);
        // Saved tensors for backward: q/k/v/context/attn-out (~5 s·h), FFN
        // intermediate in/out (~2 s·ff ≈ 8 s·h for ff=4h), norms (~2 s·h),
        // plus the attention probability matrices (heads · s²) twice
        // (softmax in/out).
        let activation = ((9 * seq * hidden + 2 * seq * ff + 2 * heads * seq * seq) as f64) * F32;
        Layer {
            name: name.into(),
            kind: LayerKind::Attention,
            params,
            flops_fwd: flops,
            bytes_fwd: (params as f64 + 12.0 * (seq * hidden) as f64) * F32,
            activation_bytes: activation,
        }
    }

    /// Residual addition over `elems` elements (no parameters; §VI ablation
    /// shows these barely matter for communication).
    #[must_use]
    pub fn residual(name: impl Into<String>, elems: u64) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Residual,
            params: 0,
            flops_fwd: elems as f64,
            bytes_fwd: 3.0 * elems as f64 * F32,
            activation_bytes: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_params_and_flops() {
        // 3x3 conv, 64->128 channels, 56x56 output, stride 1.
        let l = Layer::conv2d("c", 64, 56, 56, 128, 3, 1);
        assert_eq!(l.params, 64 * 128 * 9);
        assert_eq!(l.flops_fwd, 2.0 * (64 * 128 * 9) as f64 * (56 * 56) as f64);
        assert!(l.has_params());
        assert_eq!(l.gradient_bytes(), (64 * 128 * 9) as f64 * 4.0);
    }

    #[test]
    fn strided_conv_shrinks_output() {
        let s1 = Layer::conv2d("a", 3, 224, 224, 64, 7, 1);
        let s2 = Layer::conv2d("b", 3, 224, 224, 64, 7, 2);
        assert!(s2.flops_fwd < s1.flops_fwd);
        assert!(s2.activation_bytes < s1.activation_bytes);
        assert_eq!(s1.params, s2.params);
    }

    #[test]
    fn depthwise_conv_divides_params() {
        let full = Layer::conv2d("f", 32, 28, 28, 32, 3, 1);
        let dw = Layer::conv2d_grouped("d", 32, 28, 28, 32, 3, 1, 32);
        assert_eq!(dw.params, full.params / 32);
    }

    #[test]
    fn linear_matches_pytorch_count() {
        let l = Layer::linear("fc", 4096, 1000);
        assert_eq!(l.params, 4096 * 1000 + 1000);
    }

    #[test]
    fn bert_layer_param_count() {
        // BERT-large: hidden 1024, ff 4096 → 12,596,224 params/layer
        // (4h² + 4h + 2·h·ff + h + ff + 4h).
        let l = Layer::attention("enc", 1024, 4096, 16, 384);
        assert_eq!(
            l.params,
            4 * 1024 * 1024 + 4 * 1024 + 2 * 1024 * 4096 + 1024 + 4096 + 4 * 1024
        );
    }

    #[test]
    fn parameterless_layers() {
        assert!(!Layer::activation("relu", 1000).has_params());
        assert!(!Layer::pool("p", 64, 56, 56, 2).has_params());
        assert!(!Layer::residual("skip", 1000).has_params());
        assert!(Layer::batch_norm("bn", 64, 56, 56).has_params());
    }

    #[test]
    #[should_panic(expected = "invalid group count")]
    fn bad_groups_panic() {
        let _ = Layer::conv2d_grouped("x", 10, 8, 8, 10, 3, 1, 3);
    }
}
