//! Dataset descriptions.
//!
//! The input pipeline needs only aggregate facts about a dataset: how many
//! samples, how many bytes on disk, and how expensive a sample is to
//! preprocess relative to an ImageNet JPEG (decode + augment). The two
//! datasets of the paper's Table II are provided.

use serde::{Deserialize, Serialize};

/// A training dataset as seen by the storage/preprocessing pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Display name.
    pub name: String,
    /// Number of training samples.
    pub num_samples: u64,
    /// Total on-disk size in bytes.
    pub total_bytes: f64,
    /// CPU preprocessing cost of one sample relative to an ImageNet JPEG
    /// (1.0 = full decode + augmentation pipeline).
    pub prep_cost_factor: f64,
}

impl DatasetSpec {
    /// Average on-disk bytes per sample.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no samples.
    #[must_use]
    pub fn avg_sample_bytes(&self) -> f64 {
        assert!(self.num_samples > 0, "dataset has no samples");
        self.total_bytes / self.num_samples as f64
    }

    /// ImageNet-1k as used by the paper (ILSVRC-2012 train, 133 GB).
    #[must_use]
    pub fn imagenet1k() -> DatasetSpec {
        DatasetSpec {
            name: "ImageNet1k".into(),
            num_samples: 1_281_167,
            total_bytes: 133.0e9,
            prep_cost_factor: 1.0,
        }
    }

    /// SQuAD 2.0 (45 MB) — tokenization is far cheaper than JPEG decode.
    #[must_use]
    pub fn squad2() -> DatasetSpec {
        DatasetSpec {
            name: "SQuAD 2.0".into(),
            num_samples: 130_319,
            total_bytes: 45.0e6,
            prep_cost_factor: 0.05,
        }
    }

    /// A deterministic scaled-down dataset for fast tests: `fraction` of
    /// ImageNet's samples and bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    #[must_use]
    pub fn imagenet_scaled(fraction: f64) -> DatasetSpec {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let full = DatasetSpec::imagenet1k();
        DatasetSpec {
            name: format!("ImageNet1k/{:.0}", 1.0 / fraction),
            num_samples: ((full.num_samples as f64 * fraction) as u64).max(1),
            total_bytes: full.total_bytes * fraction,
            prep_cost_factor: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_sample_size_is_realistic() {
        let d = DatasetSpec::imagenet1k();
        let avg = d.avg_sample_bytes();
        // ~104 KB per JPEG.
        assert!((90_000.0..120_000.0).contains(&avg), "{avg}");
    }

    #[test]
    fn squad_is_tiny_and_cheap() {
        let d = DatasetSpec::squad2();
        assert!(d.total_bytes < 100e6);
        assert!(d.prep_cost_factor < 0.5);
    }

    #[test]
    fn scaling_preserves_sample_size() {
        let full = DatasetSpec::imagenet1k();
        let tenth = DatasetSpec::imagenet_scaled(0.1);
        assert!((tenth.avg_sample_bytes() - full.avg_sample_bytes()).abs() < 1.0);
        assert_eq!(tenth.num_samples, 128_116);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_rejected() {
        let _ = DatasetSpec::imagenet_scaled(0.0);
    }
}
