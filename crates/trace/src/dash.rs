//! Fleet stall dashboard: one self-contained HTML page for a whole
//! `(instance type × model)` sweep.
//!
//! Each [`DashCell`] is one run's `stash-series-v1` series plus its
//! metadata; [`Dashboard::to_html`] lays the cells out as a heatmap
//! (rows = clusters, columns = models) where every cell carries:
//!
//! * a background heat color proportional to the run's stall fraction,
//! * an iteration-time sparkline (compressed fast-forward regions at
//!   reduced opacity, fault windows as translucent bands),
//! * the run's iteration-time CoV, warm-up ratio and transient-spike
//!   count.
//!
//! The page embeds the full series documents in an inert
//! `<script type="application/json">` block, and [`Dashboard::validate`]
//! cross-checks the rendered cells against that embedded JSON — the same
//! check `tier1.sh` runs on every `stash dash` artifact. Rendering is
//! deterministic: cells are sorted, floats are fixed-precision, and no
//! clock or randomness is consulted, so the artifact is byte-stable for
//! a given input set.

use std::collections::BTreeSet;

use serde_json::Value;
use stash_telemetry::series::{is_series_doc, IterSeries, SeriesMeta};

use crate::svg::{escape, fmt_ns, heat_color, sparkline};

/// A cell's warm-up ratio must exceed this for the dashboard to flag the
/// run as having a warm-up transient (first iterations slower than
/// steady state).
pub const WARMUP_FLAG_RATIO: f64 = 1.25;

/// `id` attribute of the embedded series-document JSON block.
pub const EMBED_ID: &str = "stash-series-docs";

/// One dashboard cell: a run's series and where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct DashCell {
    /// Sweep coordinates and iteration counts.
    pub meta: SeriesMeta,
    /// The run's iteration series.
    pub series: IterSeries,
}

impl DashCell {
    /// Parses a cell from a `stash-series-v1` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_doc(doc: &Value) -> Result<DashCell, String> {
        let (meta, series) = IterSeries::from_json(doc)?;
        Ok(DashCell { meta, series })
    }

    /// Fraction of the run's wall time spent stalled (data, comm,
    /// recovery, straggler; net over the series, clamped to [0, 1]).
    #[must_use]
    pub fn stall_fraction(&self) -> f64 {
        let t = self.series.totals();
        if t.wall_ns == 0 {
            return 0.0;
        }
        let stalled = t.data_wait_ns + t.comm_wait_ns + t.recovery_ns + t.straggler_ns;
        (stalled.max(0) as f64 / t.wall_ns as f64).clamp(0.0, 1.0)
    }
}

/// A sorted set of cells ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct Dashboard {
    cells: Vec<DashCell>,
}

impl Dashboard {
    /// Builds a dashboard; cells are sorted by `(cluster, model)` so the
    /// rendering order — and therefore the output bytes — do not depend
    /// on the caller's iteration order. When several runs cover the same
    /// pair (e.g. a clean sweep plus a `stash chaos --series` overlay of
    /// one cell), the run with the most fault annotations wins, then the
    /// one covering more iterations — so a chaos overlay replaces the
    /// clean cell rather than colliding with it.
    #[must_use]
    pub fn new(mut cells: Vec<DashCell>) -> Dashboard {
        cells.sort_by(|a, b| {
            (&a.meta.cluster, &a.meta.model)
                .cmp(&(&b.meta.cluster, &b.meta.model))
                .then_with(|| b.series.annotations.len().cmp(&a.series.annotations.len()))
                .then_with(|| {
                    b.series
                        .totals()
                        .iterations
                        .cmp(&a.series.totals().iterations)
                })
        });
        cells.dedup_by(|b, a| a.meta.cluster == b.meta.cluster && a.meta.model == b.meta.model);
        Dashboard { cells }
    }

    /// The sorted cells.
    #[must_use]
    pub fn cells(&self) -> &[DashCell] {
        &self.cells
    }

    /// `true` when there is nothing to render.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Renders the self-contained fleet dashboard HTML.
    #[must_use]
    pub fn to_html(&self) -> String {
        let clusters: BTreeSet<&str> = self.cells.iter().map(|c| c.meta.cluster.as_str()).collect();
        let models: BTreeSet<&str> = self.cells.iter().map(|c| c.meta.model.as_str()).collect();

        let mut h = String::with_capacity(64 * 1024);
        h.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        h.push_str("<title>stash fleet dashboard</title>\n");
        h.push_str(
            "<style>\n\
             body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:80rem;\
             padding:0 1rem;color:#1a1a2e}\n\
             h1{font-size:1.3rem}\n\
             table{border-collapse:collapse;width:100%}\n\
             th,td{text-align:left;padding:.4rem .5rem;border:1px solid #ddd;\
             vertical-align:top}\n\
             td.cell{min-width:11rem}\n\
             .stat{font-variant-numeric:tabular-nums;color:#444;font-size:.85em}\n\
             .warmup .stat{font-weight:600}\n\
             svg.spark{width:100%;height:2rem;display:block;background:#fafafa;\
             border:1px solid #eee}\n\
             </style>\n</head>\n<body>\n",
        );
        let worst = self
            .cells
            .iter()
            .max_by(|a, b| {
                a.stall_fraction()
                    .partial_cmp(&b.stall_fraction())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|c| {
                format!(
                    "{} / {} ({:.1}% stalled)",
                    escape(&c.meta.cluster),
                    escape(&c.meta.model),
                    c.stall_fraction() * 100.0
                )
            })
            .unwrap_or_else(|| "—".to_string());
        h.push_str(&format!(
            "<h1>stash fleet stall dashboard</h1>\n\
             <p>{} run{} · {} cluster{} × {} model{} · worst cell: {worst}</p>\n",
            self.cells.len(),
            if self.cells.len() == 1 { "" } else { "s" },
            clusters.len(),
            if clusters.len() == 1 { "" } else { "s" },
            models.len(),
            if models.len() == 1 { "" } else { "s" },
        ));

        h.push_str("<table>\n<tr><th></th>");
        for m in &models {
            h.push_str(&format!("<th>{}</th>", escape(m)));
        }
        h.push_str("</tr>\n");
        for cl in &clusters {
            h.push_str(&format!("<tr><th>{}</th>", escape(cl)));
            for m in &models {
                match self
                    .cells
                    .iter()
                    .find(|c| c.meta.cluster == *cl && c.meta.model == *m)
                {
                    Some(cell) => h.push_str(&Self::render_cell(cell)),
                    None => h.push_str("<td class=\"cell empty\">—</td>"),
                }
            }
            h.push_str("</tr>\n");
        }
        h.push_str("</table>\n");
        h.push_str(
            "<p class=\"stat\">cell shading = stall fraction · sparkline = mean \
             iteration time per bucket (faded = fast-forwarded, shaded band = \
             fault window)</p>\n",
        );

        // Embedded machine-readable series documents, one per cell. The
        // `</` escape keeps the block inert inside <script>.
        let docs: Vec<Value> = self
            .cells
            .iter()
            .map(|c| c.series.to_json(&c.meta))
            .collect();
        let body = serde_json::to_string_pretty(&Value::Array(docs))
            .unwrap_or_else(|_| "[]".to_string())
            .replace("</", "<\\/");
        h.push_str(&format!(
            "<script type=\"application/json\" id=\"{EMBED_ID}\">\n{body}\n</script>\n"
        ));
        h.push_str("</body>\n</html>\n");
        h
    }

    fn render_cell(cell: &DashCell) -> String {
        let frac = cell.stall_fraction();
        let cov = cell.series.iteration_cov();
        let warmup = cell.series.warmup_ratio();
        let spikes = cell.series.spike_count();
        let t = cell.series.totals();
        let warm_class = if warmup > WARMUP_FLAG_RATIO {
            " warmup"
        } else {
            ""
        };
        format!(
            "<td class=\"cell{warm_class}\" style=\"background:{}\" \
             data-cell=\"{}|{}\" data-stall=\"{frac:.4}\" data-cov=\"{cov:.4}\" \
             data-spikes=\"{spikes}\">\
             {}\
             <div class=\"stat\">stall {:.1}% · CoV {cov:.4} · warm-up {warmup:.2}× · \
             {spikes} spike{} · {} iters · wall {}</div>\
             </td>",
            heat_color(frac),
            escape(&cell.meta.cluster),
            escape(&cell.meta.model),
            sparkline(&cell.series),
            frac * 100.0,
            if spikes == 1 { "" } else { "s" },
            t.iterations,
            fmt_ns(t.wall_ns),
        )
    }

    /// Cross-checks a rendered dashboard against its own embedded JSON:
    /// every embedded document must be a valid `stash-series-v1` series,
    /// every `(cluster, model)` pair must have a rendered cell whose
    /// `data-cov` / `data-spikes` attributes match the series' recomputed
    /// statistics, and the rendered cell count must equal the document
    /// count. Returns the number of validated cells.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency.
    pub fn validate(html: &str) -> Result<usize, String> {
        let open = format!("<script type=\"application/json\" id=\"{EMBED_ID}\">");
        let start = html
            .find(&open)
            .ok_or_else(|| format!("no embedded series block (id '{EMBED_ID}')"))?;
        let rest = &html[start + open.len()..];
        let end = rest
            .find("</script>")
            .ok_or("embedded series block never closes")?;
        let body = rest[..end].replace("<\\/", "</");
        let docs: Value = serde_json::from_str(body.trim())
            .map_err(|e| format!("embedded series block is not JSON: {e}"))?;
        let docs = docs
            .as_array()
            .ok_or("embedded series block is not a JSON array")?;
        for (i, doc) in docs.iter().enumerate() {
            if !is_series_doc(doc) {
                return Err(format!("embedded document {i} is not a series doc"));
            }
            let cell =
                DashCell::from_doc(doc).map_err(|e| format!("embedded document {i}: {e}"))?;
            let key = format!(
                "data-cell=\"{}|{}\"",
                escape(&cell.meta.cluster),
                escape(&cell.meta.model)
            );
            let td = html
                .find(&key)
                .ok_or_else(|| format!("no rendered cell for {key}"))?;
            // The data attributes all sit in the same tag, right after the key.
            let tag_end = html[td..]
                .find('>')
                .map(|o| td + o)
                .ok_or_else(|| format!("unterminated cell tag for {key}"))?;
            let tag = &html[td..tag_end];
            let want_cov = format!("data-cov=\"{:.4}\"", cell.series.iteration_cov());
            if !tag.contains(&want_cov) {
                return Err(format!("cell {key} does not carry {want_cov}"));
            }
            let want_spikes = format!("data-spikes=\"{}\"", cell.series.spike_count());
            if !tag.contains(&want_spikes) {
                return Err(format!("cell {key} does not carry {want_spikes}"));
            }
        }
        let rendered = html.matches("data-cell=\"").count();
        if rendered != docs.len() {
            return Err(format!(
                "{rendered} rendered cells but {} embedded documents",
                docs.len()
            ));
        }
        Ok(docs.len())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_telemetry::series::{Annotation, SeriesSample};

    fn cell(cluster: &str, model: &str, comm: i64) -> DashCell {
        DashCell {
            meta: SeriesMeta {
                cluster: cluster.to_string(),
                model: model.to_string(),
                world: 4,
                per_gpu_batch: 32,
                iterations: 8,
                simulated_iterations: 8,
            },
            series: IterSeries {
                samples: vec![
                    SeriesSample {
                        start_iter: 0,
                        iterations: 4,
                        start_ns: 0,
                        wall_ns: 4_000,
                        compute_ns: 4_000 - comm,
                        comm_wait_ns: comm,
                        ..SeriesSample::default()
                    },
                    SeriesSample {
                        start_iter: 4,
                        iterations: 4,
                        ff_iterations: 4,
                        start_ns: 4_000,
                        wall_ns: 4_000,
                        compute_ns: 4_000 - comm,
                        comm_wait_ns: comm,
                        ..SeriesSample::default()
                    },
                ],
                annotations: vec![Annotation {
                    label: "link node0".to_string(),
                    kind: "link_degradation".to_string(),
                    start_ns: 1_000,
                    end_ns: 3_000,
                }],
                end_ns: 8_000,
            },
        }
    }

    #[test]
    fn renders_every_pair_and_validates() {
        let dash = Dashboard::new(vec![
            cell("2x p3.8xlarge", "resnet18", 800),
            cell("p3.2xlarge", "bert_large", 2_400),
            cell("p3.2xlarge", "resnet18", 100),
        ]);
        let html = dash.to_html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
        assert_eq!(Dashboard::validate(&html), Ok(3));
        // Missing pair renders an explicit empty cell.
        assert!(html.contains("cell empty"));
    }

    #[test]
    fn chaos_overlay_replaces_the_clean_cell_for_the_same_pair() {
        let clean = cell("p3.2xlarge", "resnet18", 100);
        let mut chaotic = cell("p3.2xlarge", "resnet18", 900);
        chaotic.series.annotations.push(Annotation {
            label: "preemption node0".to_string(),
            kind: "preemption".to_string(),
            start_ns: 0,
            end_ns: 2_000,
        });
        let dash = Dashboard::new(vec![clean, chaotic.clone()]);
        assert_eq!(dash.cells(), &[chaotic]);
        let html = dash.to_html();
        assert_eq!(Dashboard::validate(&html), Ok(1));
    }

    #[test]
    fn html_is_byte_deterministic_regardless_of_input_order() {
        let a = Dashboard::new(vec![
            cell("p3.2xlarge", "resnet18", 100),
            cell("p3.2xlarge", "bert_large", 2_400),
        ]);
        let b = Dashboard::new(vec![
            cell("p3.2xlarge", "bert_large", 2_400),
            cell("p3.2xlarge", "resnet18", 100),
        ]);
        assert_eq!(a.to_html(), b.to_html());
    }

    #[test]
    fn validate_catches_doctored_stats() {
        let dash = Dashboard::new(vec![cell("p3.2xlarge", "resnet18", 100)]);
        let html = dash.to_html();
        let doctored = html.replacen("data-cov=\"", "data-cov=\"9", 1);
        let err = Dashboard::validate(&doctored).unwrap_err();
        assert!(err.contains("data-cov"), "unexpected error: {err}");
    }

    #[test]
    fn validate_requires_the_embedded_block() {
        assert!(Dashboard::validate("<html></html>").is_err());
    }

    #[test]
    fn stall_fraction_is_clamped_and_sane() {
        let c = cell("p3.2xlarge", "resnet18", 1_000);
        let frac = c.stall_fraction();
        assert!((frac - 0.25).abs() < 1e-9, "got {frac}");
    }
}
