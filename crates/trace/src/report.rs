//! Machine- and human-readable stall reports, and report diffing.
//!
//! An [`InsightReport`] packages one traced run's critical-path
//! decomposition ([`crate::critical`]), what-if projections
//! ([`crate::whatif`]) and reconciliation numbers into:
//!
//! * **JSON** ([`InsightReport::to_json`] / [`InsightReport::from_json`])
//!   — the interchange format `stash diff` consumes; schema tag
//!   `stash-report-v1`.
//! * **HTML** ([`InsightReport::to_html`]) — a single self-contained
//!   file: inline CSS, an inline-SVG critical-path timeline, stall
//!   bars and the what-if table. No external scripts, stylesheets or
//!   fonts, so it renders identically from a file:// URL on an
//!   air-gapped machine.
//!
//! [`diff`] compares two reports' per-category stall totals and returns
//! the regressions beyond a relative threshold — the seed of CI perf
//! gating: `stash diff` exits non-zero when this list is non-empty.

use std::collections::BTreeMap;

use serde_json::{json, Map, Value};
use stash_telemetry::series::IterSeries;

use crate::critical::{CriticalPath, PathCategory};
use crate::svg::{color, escape, fmt_ns, sparkline, timeline_strip};

/// Schema tag embedded in every report JSON.
pub const SCHEMA: &str = "stash-report-v1";

/// Default relative threshold for [`diff`]: a stall category regresses
/// when it grows by more than this fraction over the baseline.
pub const DEFAULT_DIFF_THRESHOLD: f64 = 0.10;

/// One `(name, arg)` blame row (owned strings so reports round-trip
/// through JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameRow {
    /// Span name (`"allreduce"`, `"await_batch"`, ...).
    pub name: String,
    /// Bucket / backward-segment index within `name`.
    pub arg: u32,
    /// Label of the [`PathCategory`] blamed.
    pub category: String,
    /// Critical-path nanoseconds attributed to this group.
    pub ns: u64,
}

/// One what-if scenario row.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfRow {
    /// Label of the rescaled [`crate::whatif::WhatIfResource`].
    pub resource: String,
    /// Speedup factor applied to the resource.
    pub factor: f64,
    /// Analytically projected wall time, nanoseconds.
    pub projected_wall_ns: u64,
    /// Ground-truth wall time from re-simulation with scaled hardware,
    /// when the producer ran the cross-check.
    pub resim_wall_ns: Option<u64>,
}

/// One timeline interval, `(start_ns, end_ns, category label)`.
pub type SegmentRow = (u64, u64, String);

/// A complete stall report for one `(cluster, model)` traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct InsightReport {
    /// Cluster display name (e.g. `"p3.8xlarge"`, `"2x p3.8xlarge"`).
    pub cluster: String,
    /// Model name.
    pub model: String,
    /// Participating GPU count.
    pub world: usize,
    /// Traced wall time of the simulated window, nanoseconds.
    pub wall_ns: u64,
    /// Total all-reduce busy time in the window, nanoseconds.
    pub comm_busy_ns: u64,
    /// Extrapolation factor from the simulated window to the full epoch
    /// (`iterations / simulated_iterations`).
    pub factor: f64,
    /// Extrapolated full-epoch time, nanoseconds.
    pub epoch_ns: u64,
    /// Critical-path nanoseconds per category label, summing to
    /// [`InsightReport::wall_ns`] exactly.
    pub categories: BTreeMap<String, u64>,
    /// Engine-reported extrapolated `(compute, data-wait, comm-wait)`
    /// nanoseconds the critical path reconciles against.
    pub engine_compute_ns: u64,
    /// See [`InsightReport::engine_compute_ns`].
    pub engine_data_wait_ns: u64,
    /// See [`InsightReport::engine_compute_ns`].
    pub engine_comm_wait_ns: u64,
    /// Top blamed spans, descending contribution.
    pub blame: Vec<BlameRow>,
    /// What-if scenarios.
    pub whatif: Vec<WhatIfRow>,
    /// Timeline segments for rendering (adjacent same-category runs may
    /// be merged).
    pub segments: Vec<SegmentRow>,
    /// Optional embedded `stash-series-v1` document: the run's
    /// iteration-resolved series, rendered as a sparkline strip in the
    /// HTML report. Absent in pre-series reports; `from_json` accepts
    /// both.
    pub series: Option<Value>,
}

impl InsightReport {
    /// Seeds a report from a critical path; the caller fills in blame,
    /// what-if rows and the engine reconciliation numbers.
    #[must_use]
    pub fn from_path(
        cluster: &str,
        model: &str,
        world: usize,
        factor: f64,
        path: &CriticalPath,
    ) -> InsightReport {
        let mut categories = BTreeMap::new();
        for cat in PathCategory::ALL {
            categories.insert(cat.label().to_string(), path.total_ns(cat));
        }
        // Merge adjacent same-category segments: the renderer cares about
        // color runs, not span identity, and this caps SVG size.
        let mut segments: Vec<SegmentRow> = Vec::new();
        for seg in &path.segments {
            match segments.last_mut() {
                Some((_, end, cat)) if *end == seg.start_ns && *cat == seg.category.label() => {
                    *end = seg.end_ns;
                }
                _ => segments.push((seg.start_ns, seg.end_ns, seg.category.label().to_string())),
            }
        }
        InsightReport {
            cluster: cluster.to_string(),
            model: model.to_string(),
            world,
            wall_ns: path.wall_ns,
            comm_busy_ns: path.comm_busy_ns,
            factor,
            epoch_ns: 0,
            categories,
            engine_compute_ns: 0,
            engine_data_wait_ns: 0,
            engine_comm_wait_ns: 0,
            blame: Vec::new(),
            whatif: Vec::new(),
            segments,
            series: None,
        }
    }

    /// Nanoseconds attributed to `category` (0 when absent).
    #[must_use]
    pub fn category_ns(&self, category: &str) -> u64 {
        self.categories.get(category).copied().unwrap_or(0)
    }

    /// Serializes to the `stash-report-v1` JSON document.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut doc = json!({
            "schema": SCHEMA,
            "cluster": self.cluster,
            "model": self.model,
            "world": self.world,
            "wall_ns": self.wall_ns,
            "comm_busy_ns": self.comm_busy_ns,
            "factor": self.factor,
            "epoch_ns": self.epoch_ns,
            "categories": self.categories,
            "engine": json!({
                "compute_ns": self.engine_compute_ns,
                "data_wait_ns": self.engine_data_wait_ns,
                "comm_wait_ns": self.engine_comm_wait_ns,
            }),
            "blame": self.blame.iter().map(|b| json!({
                "name": b.name,
                "arg": b.arg,
                "category": b.category,
                "ns": b.ns,
            })).collect::<Vec<_>>(),
            "whatif": self.whatif.iter().map(|w| {
                let mut row = Map::new();
                row.insert("resource".into(), json!(w.resource));
                row.insert("factor".into(), json!(w.factor));
                row.insert("projected_wall_ns".into(), json!(w.projected_wall_ns));
                if let Some(r) = w.resim_wall_ns {
                    row.insert("resim_wall_ns".into(), json!(r));
                }
                Value::Object(row)
            }).collect::<Vec<_>>(),
            "segments": self.segments.iter().map(|(s, e, c)| json!([s, e, c])).collect::<Vec<_>>(),
        });
        if let (Value::Object(m), Some(series)) = (&mut doc, &self.series) {
            m.insert("series".into(), series.clone());
        }
        doc
    }

    /// Parses a `stash-report-v1` document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(doc: &Value) -> Result<InsightReport, String> {
        let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!(
                "unsupported report schema '{schema}' (want '{SCHEMA}')"
            ));
        }
        let str_field = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Value::as_str)
                .map(String::from)
                .ok_or_else(|| format!("missing string field '{k}'"))
        };
        let u64_field = |v: &Value, k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer field '{k}'"))
        };
        let mut categories = BTreeMap::new();
        let cats = doc
            .get("categories")
            .and_then(Value::as_object)
            .ok_or("missing 'categories' object")?;
        for (k, v) in cats.iter() {
            categories.insert(
                k.clone(),
                v.as_u64()
                    .ok_or_else(|| format!("category '{k}' not an integer"))?,
            );
        }
        let engine = doc
            .get("engine")
            .and_then(Value::as_object)
            .ok_or("missing 'engine' object")?;
        let engine = Value::Object(engine.clone());

        let mut blame = Vec::new();
        if let Some(rows) = doc.get("blame").and_then(Value::as_array) {
            for row in rows {
                blame.push(BlameRow {
                    name: row
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or("blame row missing 'name'")?
                        .to_string(),
                    arg: u64_field(row, "arg")? as u32,
                    category: row
                        .get("category")
                        .and_then(Value::as_str)
                        .ok_or("blame row missing 'category'")?
                        .to_string(),
                    ns: u64_field(row, "ns")?,
                });
            }
        }
        let mut whatif = Vec::new();
        if let Some(rows) = doc.get("whatif").and_then(Value::as_array) {
            for row in rows {
                whatif.push(WhatIfRow {
                    resource: row
                        .get("resource")
                        .and_then(Value::as_str)
                        .ok_or("whatif row missing 'resource'")?
                        .to_string(),
                    factor: row
                        .get("factor")
                        .and_then(Value::as_f64)
                        .ok_or("whatif row missing 'factor'")?,
                    projected_wall_ns: u64_field(row, "projected_wall_ns")?,
                    resim_wall_ns: row.get("resim_wall_ns").and_then(Value::as_u64),
                });
            }
        }
        let mut segments = Vec::new();
        if let Some(rows) = doc.get("segments").and_then(Value::as_array) {
            for row in rows {
                let triple = row.as_array().ok_or("segment row not an array")?;
                if triple.len() != 3 {
                    return Err("segment row must be [start, end, category]".to_string());
                }
                segments.push((
                    triple[0].as_u64().ok_or("segment start not an integer")?,
                    triple[1].as_u64().ok_or("segment end not an integer")?,
                    triple[2]
                        .as_str()
                        .ok_or("segment category not a string")?
                        .to_string(),
                ));
            }
        }
        Ok(InsightReport {
            cluster: str_field("cluster")?,
            model: str_field("model")?,
            world: u64_field(doc, "world")? as usize,
            wall_ns: u64_field(doc, "wall_ns")?,
            comm_busy_ns: u64_field(doc, "comm_busy_ns")?,
            factor: doc
                .get("factor")
                .and_then(Value::as_f64)
                .ok_or("missing 'factor'")?,
            epoch_ns: u64_field(doc, "epoch_ns")?,
            categories,
            engine_compute_ns: u64_field(&engine, "compute_ns")?,
            engine_data_wait_ns: u64_field(&engine, "data_wait_ns")?,
            engine_comm_wait_ns: u64_field(&engine, "comm_wait_ns")?,
            blame,
            whatif,
            segments,
            series: doc.get("series").cloned(),
        })
    }

    /// Renders the self-contained HTML report.
    #[must_use]
    pub fn to_html(&self) -> String {
        let mut h = String::with_capacity(16 * 1024);
        h.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        h.push_str(&format!(
            "<title>stash report — {} / {}</title>\n",
            escape(&self.cluster),
            escape(&self.model)
        ));
        h.push_str(
            "<style>\n\
             body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:64rem;\
             padding:0 1rem;color:#1a1a2e}\n\
             h1{font-size:1.3rem}h2{font-size:1.05rem;margin-top:2rem}\n\
             table{border-collapse:collapse;width:100%}\n\
             th,td{text-align:left;padding:.3rem .6rem;border-bottom:1px solid #ddd}\n\
             td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}\n\
             .bar{height:1rem;display:inline-block;vertical-align:middle}\n\
             .legend span{display:inline-block;margin-right:1rem}\n\
             .swatch{display:inline-block;width:.8rem;height:.8rem;margin-right:.3rem;\
             vertical-align:middle}\n\
             svg{width:100%;height:auto;border:1px solid #ddd;background:#fafafa}\n\
             </style>\n</head>\n<body>\n",
        );
        h.push_str(&format!(
            "<h1>stash stall report — {} · {} · {} GPU{}</h1>\n",
            escape(&self.cluster),
            escape(&self.model),
            self.world,
            if self.world == 1 { "" } else { "s" }
        ));
        h.push_str(&format!(
            "<p>Traced window {} · projected epoch {} (×{:.1} extrapolation) · \
             all-reduce busy {}</p>\n",
            fmt_ns(self.wall_ns),
            fmt_ns(self.epoch_ns),
            self.factor,
            fmt_ns(self.comm_busy_ns),
        ));

        // --- timeline ---------------------------------------------------
        h.push_str("<h2>Critical-path timeline (rank 0)</h2>\n");
        timeline_strip(&mut h, &self.segments, self.wall_ns);
        let wall = self.wall_ns.max(1) as f64;
        h.push_str("<p class=\"legend\">");
        for cat in PathCategory::ALL {
            h.push_str(&format!(
                "<span><span class=\"swatch\" style=\"background:{}\"></span>{}</span>",
                color(cat.label()),
                cat.label()
            ));
        }
        h.push_str("</p>\n");

        // --- stall breakdown -------------------------------------------
        h.push_str(
            "<h2>Stall breakdown</h2>\n<table>\n<tr><th>category</th>\
                    <th class=\"num\">time (ns)</th><th class=\"num\">share</th>\
                    <th></th></tr>\n",
        );
        for cat in PathCategory::ALL {
            let ns = self.category_ns(cat.label());
            let share = ns as f64 / wall;
            h.push_str(&format!(
                "<tr><td>{}</td><td class=\"num\">{ns}</td>\
                 <td class=\"num\">{:.1}%</td>\
                 <td><span class=\"bar\" style=\"width:{:.1}%;background:{}\"></span></td></tr>\n",
                cat.label(),
                share * 100.0,
                share * 100.0,
                color(cat.label()),
            ));
        }
        h.push_str(&format!(
            "<tr><th>total</th><th class=\"num\">{}</th><th class=\"num\">100.0%</th><th></th></tr>\n",
            self.wall_ns
        ));
        h.push_str("</table>\n");
        h.push_str(&format!(
            "<p>Engine reconciliation (extrapolated): compute {} ns · \
             data-wait {} ns · comm-wait {} ns.</p>\n",
            self.engine_compute_ns, self.engine_data_wait_ns, self.engine_comm_wait_ns
        ));

        // --- iteration series -------------------------------------------
        if let Some(doc) = &self.series {
            if let Ok((_, series)) = IterSeries::from_json(doc) {
                if !series.is_empty() {
                    h.push_str("<h2>Iteration series</h2>\n");
                    h.push_str(&sparkline(&series));
                    h.push_str(&format!(
                        "<p>iteration-time CoV {:.4} · warm-up ratio {:.2}× · \
                         transient spikes {} · {} fault window{}</p>\n",
                        series.iteration_cov(),
                        series.warmup_ratio(),
                        series.spike_count(),
                        series.annotations.len(),
                        if series.annotations.len() == 1 {
                            ""
                        } else {
                            "s"
                        },
                    ));
                }
            }
        }

        // --- what-if ----------------------------------------------------
        if !self.whatif.is_empty() {
            h.push_str(
                "<h2>What-if projections</h2>\n<table>\n<tr><th>resource</th>\
                        <th class=\"num\">scale</th><th class=\"num\">projected wall</th>\
                        <th class=\"num\">speedup</th><th class=\"num\">re-simulated</th></tr>\n",
            );
            for w in &self.whatif {
                let speedup = self.wall_ns as f64 / w.projected_wall_ns.max(1) as f64;
                let resim = w.resim_wall_ns.map_or_else(|| "—".to_string(), fmt_ns);
                h.push_str(&format!(
                    "<tr><td>{}</td><td class=\"num\">{:.2}×</td>\
                     <td class=\"num\">{}</td><td class=\"num\">{speedup:.2}×</td>\
                     <td class=\"num\">{resim}</td></tr>\n",
                    escape(&w.resource),
                    w.factor,
                    fmt_ns(w.projected_wall_ns),
                ));
            }
            h.push_str("</table>\n");
        }

        // --- blame ------------------------------------------------------
        if !self.blame.is_empty() {
            h.push_str(
                "<h2>Top blamed spans</h2>\n<table>\n<tr><th>span</th><th>category</th>\
                        <th class=\"num\">critical-path time</th></tr>\n",
            );
            for b in &self.blame {
                h.push_str(&format!(
                    "<tr><td>{}[{}]</td><td>{}</td><td class=\"num\">{}</td></tr>\n",
                    escape(&b.name),
                    b.arg,
                    escape(&b.category),
                    fmt_ns(b.ns),
                ));
            }
            h.push_str("</table>\n");
        }

        h.push_str("</body>\n</html>\n");
        h
    }
}

/// One flagged stall regression between two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The regressed category label.
    pub category: String,
    /// Baseline nanoseconds.
    pub baseline_ns: u64,
    /// Current nanoseconds.
    pub current_ns: u64,
    /// `current / baseline` (infinite when the baseline was zero).
    pub ratio: f64,
}

/// Stall categories [`diff`] gates on — exposed stalls, not compute
/// (faster compute shifting time *into* a stall class is exactly what
/// the per-category comparison should catch, but compute itself growing
/// is a model change, not a stall regression).
pub const DIFF_CATEGORIES: [PathCategory; 7] = [
    PathCategory::Interconnect,
    PathCategory::Network,
    PathCategory::Prep,
    PathCategory::Fetch,
    PathCategory::Recovery,
    PathCategory::Straggler,
    PathCategory::Idle,
];

/// Absolute floor below which a category delta is noise, not a
/// regression (1 µs of simulated time).
pub const DIFF_FLOOR_NS: u64 = 1_000;

/// Compares per-category stall time and returns every category whose
/// current total exceeds the baseline by more than `threshold`
/// (relative) *and* [`DIFF_FLOOR_NS`] (absolute).
#[must_use]
pub fn diff(baseline: &InsightReport, current: &InsightReport, threshold: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    for cat in DIFF_CATEGORIES {
        let b = baseline.category_ns(cat.label());
        let c = current.category_ns(cat.label());
        let grew_rel = c as f64 > b as f64 * (1.0 + threshold);
        let grew_abs = c.saturating_sub(b) > DIFF_FLOOR_NS;
        if grew_rel && grew_abs {
            out.push(Regression {
                category: cat.label().to_string(),
                baseline_ns: b,
                current_ns: c,
                ratio: if b == 0 {
                    f64::INFINITY
                } else {
                    c as f64 / b as f64
                },
            });
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample_report() -> InsightReport {
        let mut categories = BTreeMap::new();
        for (cat, ns) in [
            ("compute", 700u64),
            ("overlap", 100),
            ("network", 150),
            ("idle", 50),
        ] {
            categories.insert(cat.to_string(), ns);
        }
        InsightReport {
            cluster: "2x p3.8xlarge".to_string(),
            model: "ResNet50".to_string(),
            world: 8,
            wall_ns: 1000,
            comm_busy_ns: 250,
            factor: 10.0,
            epoch_ns: 10_000,
            categories,
            engine_compute_ns: 8000,
            engine_data_wait_ns: 0,
            engine_comm_wait_ns: 1500,
            blame: vec![BlameRow {
                name: "allreduce".to_string(),
                arg: 3,
                category: "network".to_string(),
                ns: 90,
            }],
            whatif: vec![WhatIfRow {
                resource: "network".to_string(),
                factor: 2.0,
                projected_wall_ns: 900,
                resim_wall_ns: Some(880),
            }],
            segments: vec![
                (0, 700, "compute".to_string()),
                (700, 800, "overlap".to_string()),
                (800, 950, "network".to_string()),
                (950, 1000, "idle".to_string()),
            ],
            series: None,
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample_report();
        let parsed = InsightReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let err = InsightReport::from_json(&json!({"schema": "v0"})).unwrap_err();
        assert!(err.contains("unsupported"));
    }

    #[test]
    fn html_is_self_contained_and_carries_totals() {
        let html = sample_report().to_html();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        // No external references of any kind.
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
        assert!(!html.contains("<script"));
        assert!(!html.contains("<link"));
        // Rollup totals appear as exact integers.
        assert!(html.contains("<td class=\"num\">700</td>"));
        assert!(html.contains("<td class=\"num\">150</td>"));
        assert!(html.contains("<th class=\"num\">1000</th>"));
        assert!(html.contains("allreduce[3]"));
    }

    #[test]
    fn diff_flags_inflated_stall_and_passes_self_compare() {
        let base = sample_report();
        assert!(diff(&base, &base, DEFAULT_DIFF_THRESHOLD).is_empty());

        let mut doctored = base.clone();
        doctored.categories.insert("network".to_string(), 400_000);
        let regs = diff(&base, &doctored, DEFAULT_DIFF_THRESHOLD);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].category, "network");
        assert_eq!(regs[0].current_ns, 400_000);
    }

    #[test]
    fn diff_ignores_sub_floor_jitter() {
        let base = sample_report();
        let mut wiggled = base.clone();
        wiggled.categories.insert("idle".to_string(), 400); // +350ns < floor
        assert!(diff(&base, &wiggled, DEFAULT_DIFF_THRESHOLD).is_empty());
    }
}
