//! Span categories, track identities and the event data model.
//!
//! Everything here is `Copy` and carries only `&'static str` names: an
//! instrumentation site constructs a [`TraceEvent`] without touching the
//! heap, which is what keeps the disabled-tracer path allocation-free and
//! the enabled path cheap enough to leave on during sweeps.

use stash_simkit::time::{SimDuration, SimTime};

/// The stall class a span or event is attributed to.
///
/// The first four mirror the paper's stall taxonomy (compute vs the three
/// stall sources a GPU can block on); the rest label the simulator's own
/// machinery so its activity is visible on the same timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// GPU kernel time: forward, backward segments, optimizer step.
    Compute,
    /// Intra-node gradient synchronisation (PCIe / NVLink all-reduce).
    Interconnect,
    /// Inter-node gradient synchronisation (VM network all-reduce).
    Network,
    /// vCPU decode/augment work in the input pipeline.
    Prep,
    /// Input-batch acquisition: SSD reads, page-cache reads, H2D uploads,
    /// and the GPU-side wait for a batch.
    Fetch,
    /// The flow network's max-min rate solver.
    Solver,
    /// Page-cache hit/miss outcomes.
    Cache,
    /// Fault-recovery time: waiting out a preemption restart and
    /// replaying the iterations lost since the last checkpoint.
    Recovery,
    /// The *extra* compute time a transient straggler window inflicts on
    /// a rank (the nominal kernel time stays `Compute`).
    Straggler,
}

impl Category {
    /// Every category, in a stable order (rollups and exporters iterate
    /// this).
    pub const ALL: [Category; 9] = [
        Category::Compute,
        Category::Interconnect,
        Category::Network,
        Category::Prep,
        Category::Fetch,
        Category::Solver,
        Category::Cache,
        Category::Recovery,
        Category::Straggler,
    ];

    /// Stable lowercase label (metric label values, Chrome `cat` field).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Interconnect => "interconnect",
            Category::Network => "network",
            Category::Prep => "prep",
            Category::Fetch => "fetch",
            Category::Solver => "solver",
            Category::Cache => "cache",
            Category::Recovery => "recovery",
            Category::Straggler => "straggler",
        }
    }
}

/// What kind of hardware or subsystem a track represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrackKind {
    /// One GPU rank's execution timeline.
    Gpu,
    /// One data-loader worker on a node.
    Loader,
    /// The (single-stream) collective communicator of the run.
    Comm,
    /// One flow in the flow network (keyed by flow id).
    Flow,
    /// The rate solver's activity.
    Solver,
    /// One profiler measurement step (t1..t5).
    Profiler,
}

impl TrackKind {
    /// Stable lowercase label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            TrackKind::Gpu => "gpu",
            TrackKind::Loader => "loader",
            TrackKind::Comm => "comm",
            TrackKind::Flow => "flow",
            TrackKind::Solver => "solver",
            TrackKind::Profiler => "profiler",
        }
    }
}

/// A timeline lane: every event belongs to exactly one track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Track {
    /// The subsystem this lane belongs to.
    pub kind: TrackKind,
    /// Node (instance) index; 0 for cluster-global tracks.
    pub node: u32,
    /// Lane within the kind/node namespace (GPU local index, worker
    /// index, flow id, profiler step).
    pub index: u32,
}

impl Track {
    /// The execution lane of GPU `local` on node `node`.
    #[must_use]
    pub fn gpu(node: usize, local: usize) -> Track {
        Track {
            kind: TrackKind::Gpu,
            node: node as u32,
            index: local as u32,
        }
    }

    /// The lane of loader worker `worker` on node `node`.
    #[must_use]
    pub fn loader(node: usize, worker: usize) -> Track {
        Track {
            kind: TrackKind::Loader,
            node: node as u32,
            index: worker as u32,
        }
    }

    /// The run's collective-communication lane.
    #[must_use]
    pub fn comm() -> Track {
        Track {
            kind: TrackKind::Comm,
            node: 0,
            index: 0,
        }
    }

    /// The lane of flow `id` in the flow network.
    #[must_use]
    pub fn flow(id: u64) -> Track {
        Track {
            kind: TrackKind::Flow,
            node: 0,
            index: id as u32,
        }
    }

    /// The rate solver's lane.
    #[must_use]
    pub fn solver() -> Track {
        Track {
            kind: TrackKind::Solver,
            node: 0,
            index: 0,
        }
    }

    /// The lane of profiler measurement step `step` (0-based).
    #[must_use]
    pub fn profiler(step: usize) -> Track {
        Track {
            kind: TrackKind::Profiler,
            node: 0,
            index: step as u32,
        }
    }

    /// Human-readable lane name (Chrome thread name, metric label).
    #[must_use]
    pub fn label(&self) -> String {
        match self.kind {
            TrackKind::Gpu => format!("gpu n{}g{}", self.node, self.index),
            TrackKind::Loader => format!("loader n{}w{}", self.node, self.index),
            TrackKind::Comm => "comm".to_string(),
            TrackKind::Flow => format!("flow {}", self.index),
            TrackKind::Solver => "solver".to_string(),
            TrackKind::Profiler => format!("step t{}", self.index + 1),
        }
    }
}

/// One recorded observation on the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A complete interval `[start, end]` on a track.
    Span {
        /// Lane the interval lives on.
        track: Track,
        /// Stall class attribution.
        category: Category,
        /// Static name (e.g. `"forward"`, `"allreduce"`).
        name: &'static str,
        /// Numeric payload identifying *which* instance of `name` this is
        /// — the gradient-bucket index of an `"allreduce"` or
        /// `"backward"` segment, 0 when there is nothing to distinguish.
        /// Critical-path blame aggregates by `(name, arg)`.
        arg: u32,
        /// Interval start.
        start: SimTime,
        /// Interval end (`>= start`).
        end: SimTime,
    },
    /// A point-in-time marker.
    Instant {
        /// Lane the marker lives on.
        track: Track,
        /// Stall class attribution.
        category: Category,
        /// Static name (e.g. `"cache_hit"`).
        name: &'static str,
        /// When it happened.
        at: SimTime,
    },
    /// A sampled numeric series (e.g. a flow's allocated bandwidth).
    Counter {
        /// Lane the series lives on.
        track: Track,
        /// Stall class attribution.
        category: Category,
        /// Series name (e.g. `"rate_bps"`).
        name: &'static str,
        /// Sample instant.
        at: SimTime,
        /// Sample value.
        value: f64,
    },
}

impl TraceEvent {
    /// The track the event belongs to.
    #[must_use]
    pub fn track(&self) -> Track {
        match self {
            TraceEvent::Span { track, .. }
            | TraceEvent::Instant { track, .. }
            | TraceEvent::Counter { track, .. } => *track,
        }
    }

    /// The event's category.
    #[must_use]
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::Span { category, .. }
            | TraceEvent::Instant { category, .. }
            | TraceEvent::Counter { category, .. } => *category,
        }
    }

    /// The event's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Span { name, .. }
            | TraceEvent::Instant { name, .. }
            | TraceEvent::Counter { name, .. } => name,
        }
    }

    /// A span's numeric payload (bucket/segment id); zero for instants,
    /// counters and unannotated spans.
    #[must_use]
    pub fn arg(&self) -> u32 {
        match self {
            TraceEvent::Span { arg, .. } => *arg,
            _ => 0,
        }
    }

    /// The event's (start) timestamp.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Span { start, .. } => *start,
            TraceEvent::Instant { at, .. } | TraceEvent::Counter { at, .. } => *at,
        }
    }

    /// A span's duration; zero for instants and counters.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        match self {
            TraceEvent::Span { start, end, .. } => end.duration_since(*start),
            _ => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<&str> = Category::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(Category::Compute.label(), "compute");
    }

    #[test]
    fn track_constructors_round_trip() {
        let t = Track::gpu(2, 5);
        assert_eq!(t.kind, TrackKind::Gpu);
        assert_eq!((t.node, t.index), (2, 5));
        assert_eq!(t.label(), "gpu n2g5");
        assert_eq!(Track::profiler(0).label(), "step t1");
        assert_eq!(Track::comm().label(), "comm");
    }

    #[test]
    fn event_accessors() {
        let s = TraceEvent::Span {
            track: Track::gpu(0, 0),
            category: Category::Compute,
            name: "forward",
            arg: 3,
            start: SimTime::from_nanos(10),
            end: SimTime::from_nanos(25),
        };
        assert_eq!(s.duration().as_nanos(), 15);
        assert_eq!(s.at().as_nanos(), 10);
        assert_eq!(s.name(), "forward");
        assert_eq!(s.arg(), 3);
        assert_eq!(s.category(), Category::Compute);
        let i = TraceEvent::Instant {
            track: Track::solver(),
            category: Category::Solver,
            name: "full_solve",
            at: SimTime::from_nanos(3),
        };
        assert_eq!(i.duration(), SimDuration::ZERO);
        assert_eq!(i.track().kind, TrackKind::Solver);
    }
}
