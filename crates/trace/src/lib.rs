//! # stash-trace — stall-centric tracing and metrics
//!
//! A deterministic, zero-cost-when-disabled span/event recorder keyed to
//! the simulation clock ([`stash_simkit::time::SimTime`]), plus the
//! exporters that turn a recording into something a human can read:
//!
//! * **Chrome trace** ([`chrome::export`]) — open in `chrome://tracing`
//!   or Perfetto; one process per simulation, one thread per GPU /
//!   loader / communicator / flow lane.
//! * **Stall rollup** ([`rollup::StallRollup`]) — integer-nanosecond span
//!   totals per `(track kind, category)` that reconcile *exactly* with
//!   the engine's `EpochReport` stall breakdown (tests enforce this).
//! * **Prometheus text metrics** ([`metrics::render_rollup`]).
//!
//! On top of the raw recording sit the analysis layers:
//!
//! * **Critical-path decomposition** ([`critical::CriticalPath`]) —
//!   classifies every nanosecond of a rank's timeline into exactly one
//!   stall class (compute, overlap, interconnect, network, prep, fetch,
//!   idle) with exact integer-ns totals and per-bucket blame.
//! * **What-if projection** ([`whatif::project`]) — analytically
//!   rescales one resource (network, interconnect, prep, fetch) and
//!   projects the new wall time from the trace alone.
//! * **Reports** ([`report::InsightReport`]) — packages both into
//!   `stash-report-v1` JSON and a self-contained HTML page;
//!   [`report::diff`] flags per-category stall regressions between two
//!   reports.
//!
//! ## Data model
//!
//! A [`span::TraceEvent`] is a `Copy` value — a span `[start, end]`, an
//! instant, or a counter sample — on a [`span::Track`] (one timeline
//! lane) with a [`span::Category`] (the stall class it is attributed to:
//! compute, interconnect, network, prep, fetch, solver, cache).
//!
//! ## Recording
//!
//! Instrumentation sites hold a [`recorder::Tracer`] (usually behind a
//! [`recorder::SharedTracer`]) and call `span` / `instant` / `counter`.
//! A disabled tracer ([`recorder::Tracer::disabled`], the default
//! everywhere) short-circuits before event construction: no allocation,
//! no sink call, one predictable branch. Enabled tracers forward to a
//! [`sink::TraceSink`] — [`sink::RingSink`] for bounded flight
//! recording, [`sink::JsonSink`] for full capture, or a custom impl.
//!
//! ```
//! use stash_trace::chrome;
//! use stash_trace::prelude::*;
//! use stash_simkit::time::SimTime;
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let sink = Rc::new(RefCell::new(JsonSink::new()));
//! let mut tracer = Tracer::new(sink.clone());
//! tracer.span(
//!     Track::gpu(0, 0),
//!     Category::Compute,
//!     "forward",
//!     SimTime::ZERO,
//!     SimTime::from_nanos(1_000),
//! );
//!
//! let rollup = StallRollup::from_events(sink.borrow().events());
//! assert_eq!(rollup.category_total(Category::Compute).as_nanos(), 1_000);
//!
//! let doc = serde_json::to_string_pretty(&chrome::export(sink.borrow().events())).unwrap();
//! assert!(chrome::validate(&doc).is_ok());
//! ```

#![warn(missing_docs)]

pub mod chrome;
pub mod critical;
pub mod dash;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod rollup;
pub mod sink;
pub mod span;
pub mod svg;
pub mod whatif;

/// The names most instrumentation and analysis sites need.
pub mod prelude {
    pub use crate::critical::{BlamedSpan, CriticalPath, PathCategory, PathSegment};
    pub use crate::dash::{DashCell, Dashboard};
    pub use crate::metrics::MetricsBuilder;
    pub use crate::recorder::{shared, SharedTracer, Tracer};
    pub use crate::report::{diff, InsightReport, Regression, WhatIfRow};
    pub use crate::rollup::StallRollup;
    pub use crate::sink::{CountingSink, JsonSink, NullSink, RingSink, TraceSink};
    pub use crate::span::{Category, TraceEvent, Track, TrackKind};
    pub use crate::whatif::{project, WhatIfResource, PROJECTION_TOLERANCE};
}

pub use recorder::{shared, SharedTracer, Tracer};
pub use sink::{CountingSink, JsonSink, NullSink, RingSink, TraceSink};
pub use span::{Category, TraceEvent, Track, TrackKind};
