//! Per-category stall-time rollups.
//!
//! A [`StallRollup`] sums traced span durations by `(track kind,
//! category)` and by individual track, in integer nanoseconds — no
//! floating point, so the totals reconcile *exactly* with the engine's own
//! accumulators. This is the reconciliation oracle the workspace tests
//! enforce: for a traced epoch, the rank-0 GPU-track totals must equal the
//! [`EpochReport`] stall breakdown to the nanosecond.
//!
//! [`EpochReport`]: https://docs.rs/stash-ddl

use std::collections::BTreeMap;

use stash_simkit::time::SimDuration;

use crate::span::{Category, TraceEvent, Track, TrackKind};

/// Summed span time per `(track kind, category)` and per track.
#[derive(Debug, Clone, Default)]
pub struct StallRollup {
    by_kind: BTreeMap<(TrackKind, Category), u64>,
    by_track: BTreeMap<(Track, Category), u64>,
    spans: u64,
    instants: u64,
    counters: u64,
}

impl StallRollup {
    /// Builds a rollup over `(process, event)` pairs (the sink event
    /// format). All processes are folded together; filter beforehand to
    /// roll up a single simulation.
    #[must_use]
    pub fn from_events<'a, I>(events: I) -> StallRollup
    where
        I: IntoIterator<Item = &'a (u32, TraceEvent)>,
    {
        let mut r = StallRollup::default();
        for (_, ev) in events {
            r.add(ev);
        }
        r
    }

    /// Credits `ns` of span time to `(track, category)` directly, without
    /// a trace event — for producers that already hold aggregated stall
    /// totals (the sweep harness folds `StallReport` breakdowns into a
    /// rollup this way).
    pub fn add_span_ns(&mut self, track: Track, category: Category, ns: u64) {
        if ns == 0 {
            return;
        }
        *self.by_kind.entry((track.kind, category)).or_insert(0) += ns;
        *self.by_track.entry((track, category)).or_insert(0) += ns;
    }

    /// Serializes the rollup as a `stash-rollup-v1` JSON document:
    /// per-`(kind, category)` totals plus flat per-category sums, all in
    /// integer nanoseconds.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::json;

        let mut categories = std::collections::BTreeMap::new();
        for cat in Category::ALL {
            let ns = self.category_total(cat).as_nanos();
            if ns > 0 {
                categories.insert(cat.label().to_string(), ns);
            }
        }
        let (spans, instants, counters) = self.event_counts();
        json!({
            "schema": "stash-rollup-v1",
            "kind_totals": self
                .kind_totals()
                .iter()
                .map(|(k, c, d)| json!({
                    "kind": k.label(),
                    "category": c.label(),
                    "ns": d.as_nanos(),
                }))
                .collect::<Vec<_>>(),
            "categories": categories,
            "spans": spans,
            "instants": instants,
            "counters": counters,
        })
    }

    /// Folds one event into the rollup.
    pub fn add(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Span {
                track,
                category,
                start,
                end,
                ..
            } => {
                self.spans += 1;
                let ns = end.duration_since(*start).as_nanos();
                *self.by_kind.entry((track.kind, *category)).or_insert(0) += ns;
                *self.by_track.entry((*track, *category)).or_insert(0) += ns;
            }
            TraceEvent::Instant { .. } => self.instants += 1,
            TraceEvent::Counter { .. } => self.counters += 1,
        }
    }

    /// Total span time for `category` on tracks of `kind`.
    #[must_use]
    pub fn kind_total(&self, kind: TrackKind, category: Category) -> SimDuration {
        SimDuration::from_nanos(self.by_kind.get(&(kind, category)).copied().unwrap_or(0))
    }

    /// Total span time for `category` on one specific `track`.
    #[must_use]
    pub fn track_total(&self, track: Track, category: Category) -> SimDuration {
        SimDuration::from_nanos(self.by_track.get(&(track, category)).copied().unwrap_or(0))
    }

    /// Total span time for `category` across all tracks.
    #[must_use]
    pub fn category_total(&self, category: Category) -> SimDuration {
        SimDuration::from_nanos(
            self.by_kind
                .iter()
                .filter(|((_, c), _)| *c == category)
                .map(|(_, ns)| ns)
                .sum(),
        )
    }

    /// Every `(track kind, category)` total, in stable order.
    #[must_use]
    pub fn kind_totals(&self) -> Vec<(TrackKind, Category, SimDuration)> {
        self.by_kind
            .iter()
            .map(|(&(k, c), &ns)| (k, c, SimDuration::from_nanos(ns)))
            .collect()
    }

    /// Distinct tracks that carried at least one span.
    #[must_use]
    pub fn span_tracks(&self) -> Vec<Track> {
        let mut tracks: Vec<Track> = self.by_track.keys().map(|(t, _)| *t).collect();
        tracks.dedup();
        tracks
    }

    /// `(spans, instants, counters)` event counts.
    #[must_use]
    pub fn event_counts(&self) -> (u64, u64, u64) {
        (self.spans, self.instants, self.counters)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_simkit::time::SimTime;

    fn span(track: Track, cat: Category, a: u64, b: u64) -> (u32, TraceEvent) {
        (
            0,
            TraceEvent::Span {
                track,
                category: cat,
                name: "s",
                arg: 0,
                start: SimTime::from_nanos(a),
                end: SimTime::from_nanos(b),
            },
        )
    }

    #[test]
    fn totals_sum_exactly_in_nanoseconds() {
        let events = vec![
            span(Track::gpu(0, 0), Category::Compute, 0, 10),
            span(Track::gpu(0, 0), Category::Compute, 10, 17),
            span(Track::gpu(0, 1), Category::Compute, 0, 5),
            span(Track::gpu(0, 0), Category::Fetch, 20, 21),
        ];
        let r = StallRollup::from_events(&events);
        assert_eq!(
            r.kind_total(TrackKind::Gpu, Category::Compute).as_nanos(),
            22
        );
        assert_eq!(
            r.track_total(Track::gpu(0, 0), Category::Compute)
                .as_nanos(),
            17
        );
        assert_eq!(
            r.track_total(Track::gpu(0, 0), Category::Fetch).as_nanos(),
            1
        );
        assert_eq!(r.category_total(Category::Compute).as_nanos(), 22);
        assert_eq!(
            r.kind_total(TrackKind::Loader, Category::Prep),
            SimDuration::ZERO
        );
        assert_eq!(r.event_counts(), (4, 0, 0));
    }

    #[test]
    fn instants_and_counters_counted_but_not_summed() {
        let events = vec![
            (
                0,
                TraceEvent::Instant {
                    track: Track::solver(),
                    category: Category::Solver,
                    name: "full_solve",
                    at: SimTime::ZERO,
                },
            ),
            (
                0,
                TraceEvent::Counter {
                    track: Track::flow(0),
                    category: Category::Solver,
                    name: "rate_bps",
                    at: SimTime::ZERO,
                    value: 5.0,
                },
            ),
        ];
        let r = StallRollup::from_events(&events);
        assert_eq!(r.category_total(Category::Solver), SimDuration::ZERO);
        assert_eq!(r.event_counts(), (0, 1, 1));
    }

    #[test]
    fn direct_credits_and_json_agree_with_event_totals() {
        let mut direct = StallRollup::default();
        direct.add_span_ns(Track::gpu(0, 0), Category::Compute, 17);
        direct.add_span_ns(Track::gpu(0, 0), Category::Compute, 5);
        direct.add_span_ns(Track::loader(0, 0), Category::Prep, 9);
        direct.add_span_ns(Track::gpu(0, 0), Category::Fetch, 0); // no-op
        assert_eq!(
            direct
                .kind_total(TrackKind::Gpu, Category::Compute)
                .as_nanos(),
            22
        );
        assert_eq!(direct.category_total(Category::Prep).as_nanos(), 9);

        let doc = direct.to_json();
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("stash-rollup-v1")
        );
        let cats = doc.get("categories").and_then(|v| v.as_object()).unwrap();
        assert_eq!(cats.get("compute").and_then(|v| v.as_u64()), Some(22));
        assert_eq!(cats.get("prep").and_then(|v| v.as_u64()), Some(9));
        assert!(cats.get("fetch").is_none(), "zero categories are omitted");
        let kinds = doc.get("kind_totals").and_then(|v| v.as_array()).unwrap();
        assert_eq!(kinds.len(), 2);
    }

    #[test]
    fn span_tracks_deduplicate() {
        let events = vec![
            span(Track::gpu(0, 0), Category::Compute, 0, 1),
            span(Track::gpu(0, 0), Category::Fetch, 1, 2),
            span(Track::comm(), Category::Interconnect, 0, 2),
        ];
        let r = StallRollup::from_events(&events);
        assert_eq!(r.span_tracks().len(), 2);
    }
}
