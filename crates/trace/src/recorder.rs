//! The [`Tracer`]: the handle instrumentation sites emit through.
//!
//! Design contract (the "zero cost when disabled" property the engine's
//! differential tests enforce):
//!
//! * [`Tracer::disabled`] carries no sink at all. Every emission method
//!   starts with one well-predicted branch on `Option::is_some` and
//!   returns immediately — no event is constructed, nothing is allocated,
//!   and no observable engine state changes.
//! * Enabled emission constructs a `Copy` event (static names, no heap)
//!   and forwards it to the sink; cost is the sink's retention policy.
//!
//! Because the simulator is single-threaded per run, shared access between
//! the engine and the flow network uses [`SharedTracer`]
//! (`Rc<RefCell<Tracer>>`) — deterministic, no locking.

use std::cell::RefCell;
use std::rc::Rc;

use stash_simkit::time::SimTime;

use crate::sink::TraceSink;
use crate::span::{Category, TraceEvent, Track};

/// A span/event recorder keyed to the simulation clock.
#[derive(Debug)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    process: u32,
    emitted: u64,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl Tracer {
    /// The no-op tracer: semantically a [`crate::sink::NullSink`], but
    /// short-circuiting before event construction.
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer {
            sink: None,
            process: 0,
            emitted: 0,
        }
    }

    /// A tracer recording into `sink`.
    ///
    /// Pass an `Rc<RefCell<...>>` handle (see the blanket
    /// [`TraceSink`] impl) to keep reading access after the run.
    #[must_use]
    pub fn new(sink: impl TraceSink + 'static) -> Tracer {
        Tracer {
            sink: Some(Box::new(sink)),
            process: 0,
            emitted: 0,
        }
    }

    /// `true` when events are being recorded. Instrumentation sites whose
    /// bookkeeping is more than constructing the event (e.g. remembering
    /// span starts) should gate on this.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Scopes subsequent events to namespace `process` — used to keep
    /// independent simulations (each with its own clock) apart in one
    /// sink.
    pub fn set_process(&mut self, process: u32) {
        self.process = process;
    }

    /// The current process namespace.
    #[must_use]
    pub fn process(&self) -> u32 {
        self.process
    }

    /// Number of events emitted so far (0 forever when disabled).
    #[must_use]
    pub fn events_emitted(&self) -> u64 {
        self.emitted
    }

    /// Records a complete interval `[start, end]`.
    #[inline]
    pub fn span(
        &mut self,
        track: Track,
        category: Category,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        self.span_arg(track, category, name, 0, start, end);
    }

    /// Records a complete interval `[start, end]` annotated with a numeric
    /// payload (e.g. the gradient-bucket index) that critical-path blame
    /// aggregates by.
    #[inline]
    pub fn span_arg(
        &mut self,
        track: Track,
        category: Category,
        name: &'static str,
        arg: u32,
        start: SimTime,
        end: SimTime,
    ) {
        if let Some(sink) = &mut self.sink {
            self.emitted += 1;
            sink.record(
                self.process,
                &TraceEvent::Span {
                    track,
                    category,
                    name,
                    arg,
                    start,
                    end,
                },
            );
        }
    }

    /// Records a point-in-time marker.
    #[inline]
    pub fn instant(&mut self, track: Track, category: Category, name: &'static str, at: SimTime) {
        if let Some(sink) = &mut self.sink {
            self.emitted += 1;
            sink.record(
                self.process,
                &TraceEvent::Instant {
                    track,
                    category,
                    name,
                    at,
                },
            );
        }
    }

    /// Records a counter sample.
    #[inline]
    pub fn counter(
        &mut self,
        track: Track,
        category: Category,
        name: &'static str,
        at: SimTime,
        value: f64,
    ) {
        if let Some(sink) = &mut self.sink {
            self.emitted += 1;
            sink.record(
                self.process,
                &TraceEvent::Counter {
                    track,
                    category,
                    name,
                    at,
                    value,
                },
            );
        }
    }
}

/// Shared handle to one tracer, cloned between the engine and the
/// subsystems it owns (flow network, loaders).
pub type SharedTracer = Rc<RefCell<Tracer>>;

/// Wraps a tracer for sharing.
#[must_use]
pub fn shared(tracer: Tracer) -> SharedTracer {
    Rc::new(RefCell::new(tracer))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, JsonSink};

    #[test]
    fn disabled_tracer_emits_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.span(
            Track::gpu(0, 0),
            Category::Compute,
            "f",
            SimTime::ZERO,
            SimTime::from_nanos(1),
        );
        t.instant(Track::comm(), Category::Network, "x", SimTime::ZERO);
        t.counter(Track::flow(0), Category::Solver, "r", SimTime::ZERO, 1.0);
        assert_eq!(t.events_emitted(), 0);
    }

    #[test]
    fn enabled_tracer_counts_and_forwards() {
        let sink = Rc::new(RefCell::new(CountingSink::new()));
        let mut t = Tracer::new(sink.clone());
        assert!(t.is_enabled());
        t.span(
            Track::gpu(0, 0),
            Category::Compute,
            "f",
            SimTime::ZERO,
            SimTime::from_nanos(1),
        );
        t.instant(Track::comm(), Category::Network, "x", SimTime::ZERO);
        assert_eq!(t.events_emitted(), 2);
        assert_eq!(sink.borrow().total(), 2);
    }

    #[test]
    fn process_scoping_reaches_the_sink() {
        let sink = Rc::new(RefCell::new(JsonSink::new()));
        let mut t = Tracer::new(sink.clone());
        t.set_process(3);
        assert_eq!(t.process(), 3);
        t.instant(Track::profiler(2), Category::Solver, "t3", SimTime::ZERO);
        assert_eq!(sink.borrow().events()[0].0, 3);
    }

    #[test]
    fn shared_tracer_is_cloneable() {
        let t = shared(Tracer::disabled());
        let t2 = t.clone();
        t.borrow_mut().set_process(1);
        assert_eq!(t2.borrow().process(), 1);
    }
}
