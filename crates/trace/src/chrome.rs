//! Chrome `trace_events` exporter and its validating parser.
//!
//! [`export`] renders recorded events into the JSON format understood by
//! `chrome://tracing` / Perfetto: one *process* per traced simulation, one
//! *thread* (track) per GPU / loader / communicator / flow lane, spans as
//! `B`/`E` begin–end pairs, instants as `i` and counters as `C`.
//!
//! [`validate`] is the reverse direction: it parses an exported document
//! and checks the structural invariants (every `B` has a matching `E` on
//! the same track, names agree, timestamps never run backwards, stacks
//! are empty at end of track). The golden tests and the `stash trace` CLI
//! both run it, so a trace file that loads in the browser is also a trace
//! file the test suite has proven well-formed.

use std::collections::BTreeMap;

use serde_json::{json, Map, Value};

use crate::span::{TraceEvent, Track};

/// Nanoseconds → Chrome's microsecond `ts` field.
fn ts_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Renders `(process, event)` pairs into a Chrome `trace_events` document.
///
/// Track-to-thread assignment is deterministic: threads are numbered in
/// `(kind, node, index)` order within each process, so identical runs
/// produce byte-identical documents.
#[must_use]
pub fn export(events: &[(u32, TraceEvent)]) -> Value {
    // Stable thread ids per (process, track).
    let mut tracks: BTreeMap<(u32, Track), Vec<&TraceEvent>> = BTreeMap::new();
    for (process, ev) in events {
        tracks.entry((*process, ev.track())).or_default().push(ev);
    }
    let mut tids: BTreeMap<(u32, Track), u64> = BTreeMap::new();
    let mut per_process: BTreeMap<u32, u64> = BTreeMap::new();
    for (process, track) in tracks.keys() {
        let next = per_process.entry(*process).or_insert(0);
        tids.insert((*process, *track), *next);
        *next += 1;
    }

    let mut out: Vec<Value> = Vec::new();
    for ((process, track), tid) in &tids {
        out.push(json!({
            "ph": "M",
            "name": "thread_name",
            "pid": *process,
            "tid": *tid,
            "args": json!({ "name": track.label() }),
        }));
    }

    for ((process, track), events) in &tracks {
        let tid = tids[&(*process, *track)];
        emit_track(&mut out, *process, tid, events);
    }

    let mut doc = Map::new();
    doc.insert("traceEvents".to_string(), Value::Array(out));
    doc.insert(
        "displayTimeUnit".to_string(),
        Value::String("ms".to_string()),
    );
    Value::Object(doc)
}

/// Emits one track's events: spans as properly nested `B`/`E` pairs,
/// then instants and counters.
fn emit_track(out: &mut Vec<Value>, pid: u32, tid: u64, events: &[&TraceEvent]) {
    // Sort spans by (start asc, end desc): an interval that starts
    // together with a longer one nests inside it.
    let mut spans: Vec<(u64, u64, &'static str, &'static str, u32)> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::Span {
                name,
                category,
                arg,
                start,
                end,
                ..
            } => Some((
                start.as_nanos(),
                end.as_nanos(),
                *name,
                category.label(),
                *arg,
            )),
            _ => None,
        })
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));

    // Stack-based depth-first emission. Partial overlaps (which the
    // simulator does not produce, but a custom sink user could) are
    // clamped to the enclosing span so the document stays well-formed.
    let mut stack: Vec<(u64, &'static str)> = Vec::new();
    for (start, end, name, cat, arg) in spans {
        while let Some(&(top_end, top_name)) = stack.last() {
            if top_end <= start {
                out.push(end_event(pid, tid, top_end, top_name));
                stack.pop();
            } else {
                break;
            }
        }
        let end = match stack.last() {
            Some(&(top_end, _)) if end > top_end => top_end,
            _ => end,
        };
        let mut b = Map::new();
        b.insert("ph".to_string(), Value::String("B".to_string()));
        b.insert("name".to_string(), Value::String(name.to_string()));
        b.insert("cat".to_string(), Value::String(cat.to_string()));
        b.insert("pid".to_string(), json!(pid));
        b.insert("tid".to_string(), json!(tid));
        b.insert("ts".to_string(), json!(ts_us(start)));
        if arg != 0 {
            b.insert("args".to_string(), json!({ "id": arg }));
        }
        out.push(Value::Object(b));
        stack.push((end, name));
    }
    while let Some((end, name)) = stack.pop() {
        out.push(end_event(pid, tid, end, name));
    }

    for ev in events {
        match ev {
            TraceEvent::Instant {
                name, category, at, ..
            } => out.push(json!({
                "ph": "i",
                "s": "t",
                "name": *name,
                "cat": category.label(),
                "pid": pid,
                "tid": tid,
                "ts": ts_us(at.as_nanos()),
            })),
            TraceEvent::Counter {
                name,
                category,
                at,
                value,
                ..
            } => out.push(json!({
                "ph": "C",
                "name": *name,
                "cat": category.label(),
                "pid": pid,
                "tid": tid,
                "ts": ts_us(at.as_nanos()),
                "args": json!({ "value": *value }),
            })),
            TraceEvent::Span { .. } => {}
        }
    }
}

fn end_event(pid: u32, tid: u64, end_ns: u64, name: &str) -> Value {
    json!({
        "ph": "E",
        "name": name,
        "pid": pid,
        "tid": tid,
        "ts": ts_us(end_ns),
    })
}

/// What [`validate`] found in a well-formed document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeStats {
    /// `B`/`E` pair count (complete spans).
    pub spans: u64,
    /// `i` events.
    pub instants: u64,
    /// `C` events.
    pub counters: u64,
    /// Distinct `(pid, tid)` lanes that carried events.
    pub tracks: u64,
    /// Deepest `B` nesting observed on any lane.
    pub max_depth: u64,
}

/// Parses an exported document and checks its structural invariants.
///
/// Returns per-phase statistics on success; on the first violation,
/// returns a message naming the offending event index and lane.
pub fn validate(json_text: &str) -> Result<ChromeStats, String> {
    let doc: Value =
        serde_json::from_str(json_text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing traceEvents array")?;

    let mut stats = ChromeStats::default();
    // Per-(pid, tid): open-span name stack and last B/E timestamp.
    let mut lanes: BTreeMap<(u64, u64), (Vec<String>, f64)> = BTreeMap::new();

    for (idx, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {idx}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let pid = ev
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {idx}: missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {idx}: missing tid"))?;
        let ts = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {idx}: missing ts"))?;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {idx}: missing name"))?
            .to_string();

        let lane = lanes
            .entry((pid, tid))
            .or_insert_with(|| (Vec::new(), f64::MIN));
        match ph {
            "B" | "E" => {
                if ts < lane.1 {
                    return Err(format!(
                        "event {idx}: ts runs backwards on pid {pid} tid {tid} ({ts} < {})",
                        lane.1
                    ));
                }
                lane.1 = ts;
                if ph == "B" {
                    lane.0.push(name);
                    stats.max_depth = stats.max_depth.max(lane.0.len() as u64);
                } else {
                    let open = lane.0.pop().ok_or_else(|| {
                        format!("event {idx}: E without open B on pid {pid} tid {tid}")
                    })?;
                    if open != name {
                        return Err(format!(
                            "event {idx}: E '{name}' does not match open B '{open}' \
                             on pid {pid} tid {tid}"
                        ));
                    }
                    stats.spans += 1;
                }
            }
            "i" => stats.instants += 1,
            "C" => stats.counters += 1,
            other => return Err(format!("event {idx}: unknown phase '{other}'")),
        }
    }

    for ((pid, tid), (stack, _)) in &lanes {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span '{open}' on pid {pid} tid {tid}"));
        }
    }
    stats.tracks = lanes.len() as u64;
    Ok(stats)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::span::Category;
    use stash_simkit::time::SimTime;

    fn span(track: Track, name: &'static str, a: u64, b: u64) -> (u32, TraceEvent) {
        (
            0,
            TraceEvent::Span {
                track,
                category: Category::Compute,
                name,
                arg: 0,
                start: SimTime::from_nanos(a),
                end: SimTime::from_nanos(b),
            },
        )
    }

    fn export_text(events: &[(u32, TraceEvent)]) -> String {
        serde_json::to_string_pretty(&export(events)).unwrap()
    }

    #[test]
    fn sequential_spans_round_trip() {
        let events = vec![
            span(Track::gpu(0, 0), "forward", 0, 10),
            span(Track::gpu(0, 0), "backward", 10, 30),
            span(Track::gpu(0, 1), "forward", 0, 12),
        ];
        let stats = validate(&export_text(&events)).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.tracks, 2);
        assert_eq!(stats.max_depth, 1);
    }

    #[test]
    fn nested_spans_validate_with_depth() {
        let events = vec![
            span(Track::gpu(0, 0), "iteration", 0, 100),
            span(Track::gpu(0, 0), "forward", 10, 40),
            span(Track::gpu(0, 0), "backward", 40, 90),
        ];
        let stats = validate(&export_text(&events)).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn instants_and_counters_survive_export() {
        let events = vec![
            (
                0,
                TraceEvent::Instant {
                    track: Track::loader(0, 0),
                    category: Category::Cache,
                    name: "cache_hit",
                    at: SimTime::from_nanos(5),
                },
            ),
            (
                0,
                TraceEvent::Counter {
                    track: Track::flow(3),
                    category: Category::Solver,
                    name: "rate_bps",
                    at: SimTime::from_nanos(7),
                    value: 1.5e9,
                },
            ),
        ];
        let stats = validate(&export_text(&events)).unwrap();
        assert_eq!((stats.instants, stats.counters), (1, 1));
    }

    #[test]
    fn processes_become_separate_pids() {
        let mut events = vec![span(Track::gpu(0, 0), "forward", 0, 10)];
        events.push((
            4,
            TraceEvent::Span {
                track: Track::gpu(0, 0),
                category: Category::Compute,
                name: "forward",
                arg: 0,
                start: SimTime::ZERO,
                end: SimTime::from_nanos(10),
            },
        ));
        let doc = export(&events);
        let pids: Vec<u64> = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("B"))
            .map(|e| e.get("pid").and_then(Value::as_u64).unwrap())
            .collect();
        assert_eq!(pids, vec![0, 4]);
    }

    #[test]
    fn export_is_deterministic() {
        let events = vec![
            span(Track::gpu(0, 0), "forward", 0, 10),
            span(Track::comm(), "allreduce", 2, 8),
        ];
        assert_eq!(export_text(&events), export_text(&events));
    }

    #[test]
    fn validator_rejects_mismatched_pairs() {
        let bad = r#"{"traceEvents": [
            {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 0.0},
            {"ph": "E", "name": "b", "pid": 0, "tid": 0, "ts": 1.0}
        ]}"#;
        assert!(validate(bad).unwrap_err().contains("does not match"));
    }

    #[test]
    fn validator_rejects_unclosed_spans() {
        let bad = r#"{"traceEvents": [
            {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 0.0}
        ]}"#;
        assert!(validate(bad).unwrap_err().contains("unclosed"));
    }

    #[test]
    fn validator_rejects_backwards_time() {
        let bad = r#"{"traceEvents": [
            {"ph": "B", "name": "a", "pid": 0, "tid": 0, "ts": 5.0},
            {"ph": "E", "name": "a", "pid": 0, "tid": 0, "ts": 1.0}
        ]}"#;
        assert!(validate(bad).unwrap_err().contains("backwards"));
    }
}
