//! Prometheus-style text metrics.
//!
//! A tiny builder for the [text exposition format] — `# HELP` / `# TYPE`
//! headers, `name{label="value"} 1.5` samples — plus a canned renderer
//! that turns a [`StallRollup`] (and optional cache counters) into the
//! metric family the sweeps and the `stash trace` CLI dump.
//!
//! [text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use crate::rollup::StallRollup;

/// Incremental builder for a text-format metrics dump.
#[derive(Debug, Clone, Default)]
pub struct MetricsBuilder {
    out: String,
}

impl MetricsBuilder {
    /// An empty dump.
    #[must_use]
    pub fn new() -> MetricsBuilder {
        MetricsBuilder::default()
    }

    /// Starts a metric family: `# HELP` and `# TYPE` lines.
    /// `kind` is the Prometheus type (`counter`, `gauge`, ...).
    pub fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut MetricsBuilder {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        self
    }

    /// Appends one sample. `labels` are `(key, value)` pairs; pass `&[]`
    /// for an unlabelled sample. Values render with enough precision to
    /// round-trip integers exactly.
    pub fn sample(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) -> &mut MetricsBuilder {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", format_value(value));
        self
    }

    /// The accumulated dump.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a rollup (plus optional measurement-cache counters) as the
/// standard `stash_*` metric families:
///
/// * `stash_span_nanoseconds_total{kind,category}` — traced span time,
///   integer nanoseconds, exactly the rollup's reconciled totals;
/// * `stash_trace_events_total{type}` — spans / instants / counters seen;
/// * `stash_measurement_cache_{hits,misses}_total` — when provided.
#[must_use]
pub fn render_rollup(rollup: &StallRollup, cache: Option<(u64, u64)>) -> String {
    let mut b = MetricsBuilder::new();

    b.family(
        "stash_span_nanoseconds_total",
        "counter",
        "Traced span time by track kind and stall category (integer ns).",
    );
    for (kind, category, total) in rollup.kind_totals() {
        b.sample(
            "stash_span_nanoseconds_total",
            &[("kind", kind.label()), ("category", category.label())],
            total.as_nanos() as f64,
        );
    }

    let (spans, instants, counters) = rollup.event_counts();
    b.family(
        "stash_trace_events_total",
        "counter",
        "Trace events recorded, by event type.",
    );
    b.sample("stash_trace_events_total", &[("type", "span")], spans as f64);
    b.sample("stash_trace_events_total", &[("type", "instant")], instants as f64);
    b.sample("stash_trace_events_total", &[("type", "counter")], counters as f64);

    if let Some((hits, misses)) = cache {
        b.family(
            "stash_measurement_cache_hits_total",
            "counter",
            "Profiler measurement-cache hits.",
        );
        b.sample("stash_measurement_cache_hits_total", &[], hits as f64);
        b.family(
            "stash_measurement_cache_misses_total",
            "counter",
            "Profiler measurement-cache misses.",
        );
        b.sample("stash_measurement_cache_misses_total", &[], misses as f64);
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Category, TraceEvent, Track};
    use stash_simkit::time::SimTime;

    #[test]
    fn builder_formats_families_and_samples() {
        let mut b = MetricsBuilder::new();
        b.family("x_total", "counter", "Things.");
        b.sample("x_total", &[("k", "v")], 3.0);
        b.sample("x_total", &[], 2.5);
        let text = b.finish();
        assert!(text.contains("# HELP x_total Things."));
        assert!(text.contains("# TYPE x_total counter"));
        assert!(text.contains("x_total{k=\"v\"} 3\n"));
        assert!(text.contains("x_total 2.5\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut b = MetricsBuilder::new();
        b.sample("m", &[("k", "a\"b\\c")], 1.0);
        assert!(b.finish().contains(r#"m{k="a\"b\\c"} 1"#));
    }

    #[test]
    fn integer_values_render_exactly() {
        assert_eq!(format_value(1_234_567_890_123.0), "1234567890123");
        assert_eq!(format_value(0.5), "0.5");
    }

    #[test]
    fn rollup_rendering_includes_cache_counters() {
        let events = vec![(
            0,
            TraceEvent::Span {
                track: Track::gpu(0, 0),
                category: Category::Compute,
                name: "forward",
                start: SimTime::ZERO,
                end: SimTime::from_nanos(42),
            },
        )];
        let rollup = StallRollup::from_events(&events);
        let text = render_rollup(&rollup, Some((7, 3)));
        assert!(text
            .contains("stash_span_nanoseconds_total{kind=\"gpu\",category=\"compute\"} 42"));
        assert!(text.contains("stash_trace_events_total{type=\"span\"} 1"));
        assert!(text.contains("stash_measurement_cache_hits_total 7"));
        assert!(text.contains("stash_measurement_cache_misses_total 3"));
    }
}
