//! Prometheus-style text metrics for trace rollups.
//!
//! The exposition writer itself lives in [`stash_telemetry::prom`] —
//! one writer (and one strict validator) for every `.prom` artifact the
//! workspace emits. This module re-exports the builder for source
//! compatibility and keeps the canned renderer that turns a
//! [`StallRollup`] (and optional cache counters) into the metric family
//! the sweeps and the `stash trace` CLI dump.

pub use stash_telemetry::prom::MetricsBuilder;

use crate::rollup::StallRollup;

/// Renders a rollup (plus optional measurement-cache counters) as the
/// standard `stash_*` metric families:
///
/// * `stash_span_nanoseconds_total{kind,category}` — traced span time,
///   integer nanoseconds, exactly the rollup's reconciled totals;
/// * `stash_trace_events_total{type}` — spans / instants / counters seen;
/// * `stash_measurement_cache_{hits,misses}_total` — when provided.
#[must_use]
pub fn render_rollup(rollup: &StallRollup, cache: Option<(u64, u64)>) -> String {
    let mut b = MetricsBuilder::new();

    b.family(
        "stash_span_nanoseconds_total",
        "counter",
        "Traced span time by track kind and stall category (integer ns).",
    );
    for (kind, category, total) in rollup.kind_totals() {
        b.sample(
            "stash_span_nanoseconds_total",
            &[("kind", kind.label()), ("category", category.label())],
            total.as_nanos() as f64,
        );
    }

    let (spans, instants, counters) = rollup.event_counts();
    b.family(
        "stash_trace_events_total",
        "counter",
        "Trace events recorded, by event type.",
    );
    b.sample(
        "stash_trace_events_total",
        &[("type", "span")],
        spans as f64,
    );
    b.sample(
        "stash_trace_events_total",
        &[("type", "instant")],
        instants as f64,
    );
    b.sample(
        "stash_trace_events_total",
        &[("type", "counter")],
        counters as f64,
    );

    if let Some((hits, misses)) = cache {
        b.family(
            "stash_measurement_cache_hits_total",
            "counter",
            "Profiler measurement-cache hits.",
        );
        b.sample("stash_measurement_cache_hits_total", &[], hits as f64);
        b.family(
            "stash_measurement_cache_misses_total",
            "counter",
            "Profiler measurement-cache misses.",
        );
        b.sample("stash_measurement_cache_misses_total", &[], misses as f64);
    }

    b.finish()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::span::{Category, TraceEvent, Track};
    use stash_simkit::time::SimTime;
    use stash_telemetry::prom::{format_value, validate};

    #[test]
    fn builder_formats_families_and_samples() {
        let mut b = MetricsBuilder::new();
        b.family("x_total", "counter", "Things.");
        b.sample("x_total", &[("k", "v")], 3.0);
        b.sample("x_total", &[], 2.5);
        let text = b.finish();
        assert!(text.contains("# HELP x_total Things."));
        assert!(text.contains("# TYPE x_total counter"));
        assert!(text.contains("x_total{k=\"v\"} 3\n"));
        assert!(text.contains("x_total 2.5\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut b = MetricsBuilder::new();
        b.sample("m", &[("k", "a\"b\\c")], 1.0);
        assert!(b.finish().contains(r#"m{k="a\"b\\c"} 1"#));
    }

    /// Un-escapes one label value the way a Prometheus parser would.
    fn unescape_label(v: &str) -> String {
        let mut out = String::new();
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => out.push('\\'),
                    Some('"') => out.push('"'),
                    Some('n') => out.push('\n'),
                    Some(other) => out.push(other),
                    None => {}
                }
            } else {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn hostile_label_value_round_trips() {
        // A value carrying every character the escaper must handle, plus
        // a `# TYPE`-shaped prefix that must not be mistaken for a header.
        let hostile = "# TYPE evil\\path \"quoted\"\nnext{a=\"b\"},c";
        let mut b = MetricsBuilder::new();
        b.family("m_total", "counter", "About m.");
        b.sample("m_total", &[("k", hostile)], 1.0);
        let text = b.finish();

        // The sample stays on one physical line (the newline is escaped),
        // so comment parsing is unaffected.
        let line = text.lines().find(|l| l.starts_with("m_total{")).unwrap();
        assert!(text.lines().filter(|l| l.starts_with('#')).count() == 2);

        // Extract the quoted value back out and un-escape it: we must
        // recover the hostile input byte-for-byte.
        let start = line.find("k=\"").unwrap() + 3;
        let end = line.rfind("\"}").unwrap();
        assert_eq!(unescape_label(&line[start..end]), hostile);
    }

    #[test]
    fn metric_names_are_sanitized() {
        let mut b = MetricsBuilder::new();
        b.family("9bad name-total", "counter", "x");
        b.sample("9bad name-total", &[("bad key", "v")], 2.0);
        let text = b.finish();
        assert!(text.contains("# HELP _9bad_name_total x"));
        assert!(text.contains("# TYPE _9bad_name_total counter"));
        assert!(text.contains("_9bad_name_total{bad_key=\"v\"} 2"));
    }

    #[test]
    fn help_and_type_emitted_once_per_family() {
        let mut b = MetricsBuilder::new();
        b.family("m_total", "counter", "first");
        b.sample("m_total", &[("k", "a")], 1.0);
        b.family("m_total", "counter", "second");
        b.sample("m_total", &[("k", "b")], 2.0);
        let text = b.finish();
        assert_eq!(text.matches("# HELP m_total").count(), 1);
        assert_eq!(text.matches("# TYPE m_total").count(), 1);
        assert!(text.contains("first"));
        assert!(!text.contains("second"));
    }

    #[test]
    fn help_text_escapes_backslash_and_newline() {
        let mut b = MetricsBuilder::new();
        b.family("m_total", "counter", "a\\b\nc");
        let text = b.finish();
        assert!(text.contains("# HELP m_total a\\\\b\\nc\n"));
    }

    #[test]
    fn integer_values_render_exactly() {
        assert_eq!(format_value(1_234_567_890_123.0), "1234567890123");
        assert_eq!(format_value(0.5), "0.5");
    }

    #[test]
    fn rollup_rendering_includes_cache_counters_and_validates() {
        let events = vec![(
            0,
            TraceEvent::Span {
                track: Track::gpu(0, 0),
                category: Category::Compute,
                name: "forward",
                arg: 0,
                start: SimTime::ZERO,
                end: SimTime::from_nanos(42),
            },
        )];
        let rollup = StallRollup::from_events(&events);
        let text = render_rollup(&rollup, Some((7, 3)));
        validate(&text).unwrap();
        assert!(text.contains("stash_span_nanoseconds_total{kind=\"gpu\",category=\"compute\"} 42"));
        assert!(text.contains("stash_trace_events_total{type=\"span\"} 1"));
        assert!(text.contains("stash_measurement_cache_hits_total 7"));
        assert!(text.contains("stash_measurement_cache_misses_total 3"));
    }
}
