//! Trace sinks: where recorded events go.
//!
//! A [`crate::recorder::Tracer`] forwards every event to exactly one
//! [`TraceSink`]. Three production sinks are provided:
//!
//! * [`NullSink`] — drops everything; the default. A tracer built over it
//!   (or [`crate::recorder::Tracer::disabled`], which short-circuits even
//!   earlier) is the zero-cost-when-disabled path.
//! * [`RingSink`] — keeps the most recent `capacity` events in a bounded
//!   ring; for always-on flight recording.
//! * [`JsonSink`] — keeps every event and renders Chrome-trace JSON or
//!   feeds rollups/metrics; for explicit `stash trace` runs.
//!
//! [`CountingSink`] only counts — the test harness that proves disabled
//! runs emit nothing and enabled runs emit deterministically.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::span::TraceEvent;

/// Receiver of trace events.
///
/// `process` is the namespace the emitting tracer was scoped to (see
/// [`crate::recorder::Tracer::set_process`]): independent simulations
/// recorded into one sink (e.g. the profiler's five steps) stay
/// distinguishable even though each starts its own clock at zero.
pub trait TraceSink: std::fmt::Debug {
    /// Records one event.
    fn record(&mut self, process: u32, event: &TraceEvent);
}

/// Blanket impl so a caller can keep a handle to a sink while a tracer
/// owns the `Rc` clone — the pattern `stash trace` uses to read the
/// collected events back after the run.
impl<S: TraceSink> TraceSink for Rc<RefCell<S>> {
    fn record(&mut self, process: u32, event: &TraceEvent) {
        self.borrow_mut().record(process, event);
    }
}

/// Drops every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _process: u32, _event: &TraceEvent) {}
}

/// Bounded in-memory recorder: keeps the latest `capacity` events.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<(u32, TraceEvent)>,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<(u32, TraceEvent)> {
        self.buf.iter().copied().collect()
    }

    /// Number of events evicted to respect the bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, process: u32, event: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((process, *event));
    }
}

/// Unbounded recorder backing the JSON exporters.
#[derive(Debug, Clone, Default)]
pub struct JsonSink {
    events: Vec<(u32, TraceEvent)>,
}

impl JsonSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> JsonSink {
        JsonSink::default()
    }

    /// All recorded `(process, event)` pairs in emission order.
    #[must_use]
    pub fn events(&self) -> &[(u32, TraceEvent)] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for JsonSink {
    fn record(&mut self, process: u32, event: &TraceEvent) {
        self.events.push((process, *event));
    }
}

/// Counts events without retaining them (test harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    spans: u64,
    instants: u64,
    counters: u64,
}

impl CountingSink {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// Spans seen.
    #[must_use]
    pub fn spans(&self) -> u64 {
        self.spans
    }

    /// Instants seen.
    #[must_use]
    pub fn instants(&self) -> u64 {
        self.instants
    }

    /// Counter samples seen.
    #[must_use]
    pub fn counters(&self) -> u64 {
        self.counters
    }

    /// Total events seen.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.spans + self.instants + self.counters
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, _process: u32, event: &TraceEvent) {
        match event {
            TraceEvent::Span { .. } => self.spans += 1,
            TraceEvent::Instant { .. } => self.instants += 1,
            TraceEvent::Counter { .. } => self.counters += 1,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::span::{Category, Track};
    use stash_simkit::time::SimTime;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::Instant {
            track: Track::gpu(0, 0),
            category: Category::Compute,
            name: "x",
            at: SimTime::from_nanos(n),
        }
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let mut ring = RingSink::new(3);
        for n in 0..5 {
            ring.record(0, &ev(n));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring
            .events()
            .iter()
            .map(|(_, e)| e.at().as_nanos())
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn json_sink_preserves_order_and_process() {
        let mut sink = JsonSink::new();
        sink.record(2, &ev(7));
        sink.record(1, &ev(9));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0].0, 2);
        assert_eq!(sink.events()[1].1.at().as_nanos(), 9);
    }

    #[test]
    fn counting_sink_classifies() {
        let mut c = CountingSink::new();
        c.record(0, &ev(1));
        c.record(
            0,
            &TraceEvent::Span {
                track: Track::gpu(0, 0),
                category: Category::Compute,
                name: "s",
                arg: 0,
                start: SimTime::ZERO,
                end: SimTime::from_nanos(5),
            },
        );
        c.record(
            0,
            &TraceEvent::Counter {
                track: Track::flow(1),
                category: Category::Solver,
                name: "rate_bps",
                at: SimTime::ZERO,
                value: 1.0,
            },
        );
        assert_eq!(
            (c.spans(), c.instants(), c.counters(), c.total()),
            (1, 1, 1, 3)
        );
    }

    #[test]
    fn shared_sink_handle_records_through_rc() {
        let shared = Rc::new(RefCell::new(JsonSink::new()));
        let mut handle = shared.clone();
        handle.record(0, &ev(3));
        assert_eq!(shared.borrow().len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_ring_rejected() {
        let _ = RingSink::new(0);
    }
}
