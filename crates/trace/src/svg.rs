//! Shared inline-SVG building blocks for every HTML artifact the
//! workspace emits.
//!
//! The stall report ([`crate::report`]) and the fleet dashboard
//! ([`crate::dash`]) embed the same visual vocabulary — category colors,
//! HTML escaping, human-readable nanoseconds, timeline strips and
//! iteration-time sparklines — so the primitives live here once. All
//! output is deterministic: fixed-precision float formatting, no
//! randomness, no clocks, which is what keeps the artifacts
//! byte-diffable in CI.

use stash_telemetry::series::IterSeries;

/// Timeline / legend color per stall-category label.
#[must_use]
pub fn color(label: &str) -> &'static str {
    match label {
        "compute" => "#4c9f70",
        "overlap" => "#a7d3b5",
        "interconnect" => "#e4a11b",
        "network" => "#d1495b",
        "prep" => "#7768ae",
        "fetch" => "#30638e",
        "recovery" => "#8c2f39",
        "straggler" => "#c77b30",
        _ => "#c4c4c4", // idle
    }
}

/// Overlay color per fault-annotation kind (used at low opacity on top
/// of sparklines, so these map to the related stall category hues).
#[must_use]
pub fn annotation_color(kind: &str) -> &'static str {
    match kind {
        "preemption" => "#8c2f39",
        "straggler_window" => "#c77b30",
        "link_degradation" => "#d1495b",
        "disk_brownout" => "#30638e",
        _ => "#555555",
    }
}

/// Minimal HTML text escaping.
#[must_use]
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Human-readable nanoseconds.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{ns} ns")
    }
}

/// Background color for a heatmap cell holding stall fraction
/// `frac` ∈ [0, 1]: white through amber to the network-stall red.
/// Pure integer-endpoint linear interpolation, so the hex output is
/// deterministic for a given input.
#[must_use]
pub fn heat_color(frac: f64) -> String {
    let f = frac.clamp(0.0, 1.0);
    // white (255,255,255) -> amber (228,161,27) -> red (209,73,91)
    let (from, to, t) = if f < 0.5 {
        ((255u8, 255u8, 255u8), (228u8, 161u8, 27u8), f * 2.0)
    } else {
        ((228, 161, 27), (209, 73, 91), (f - 0.5) * 2.0)
    };
    let lerp = |a: u8, b: u8| -> u8 {
        let v = f64::from(a) + (f64::from(b) - f64::from(a)) * t;
        // Values stay inside [0,255] by construction of the endpoints.
        v.round() as u8
    };
    format!(
        "#{:02x}{:02x}{:02x}",
        lerp(from.0, to.0),
        lerp(from.1, to.1),
        lerp(from.2, to.2)
    )
}

/// Appends the critical-path timeline strip (one `<rect>` per merged
/// same-category segment) to `out`. `wall_ns` scales the x axis.
pub fn timeline_strip(out: &mut String, segments: &[(u64, u64, String)], wall_ns: u64) {
    out.push_str(
        "<svg viewBox=\"0 0 1000 48\" preserveAspectRatio=\"none\" \
                    role=\"img\" aria-label=\"critical path timeline\">\n",
    );
    let wall = wall_ns.max(1) as f64;
    for (s, e, cat) in segments {
        let x = *s as f64 / wall * 1000.0;
        let w = (*e - *s) as f64 / wall * 1000.0;
        out.push_str(&format!(
            "<rect x=\"{x:.2}\" y=\"4\" width=\"{w:.2}\" height=\"40\" fill=\"{}\"/>\n",
            color(cat)
        ));
    }
    out.push_str("</svg>\n");
}

/// Nominal sparkline viewBox width.
pub const SPARK_W: f64 = 240.0;
/// Nominal sparkline viewBox height.
pub const SPARK_H: f64 = 32.0;

/// Dominant category label of one series bucket: the largest of the four
/// stall classes when stalls exceed compute, otherwise `"compute"`.
fn dominant(compute: i64, data: i64, comm: i64, recovery: i64, straggler: i64) -> &'static str {
    let stalls = [
        ("fetch", data),
        ("network", comm),
        ("recovery", recovery),
        ("straggler", straggler),
    ];
    let mut best = ("compute", compute);
    for (label, ns) in stalls {
        if ns > best.1 {
            best = (label, ns);
        }
    }
    best.0
}

/// Renders an iteration-time sparkline for `series`: one bar per bucket,
/// height proportional to the bucket's mean iteration time, colored by
/// its dominant stall category. Fast-forwarded (compressed) regions are
/// drawn at reduced opacity with a `class="ff"` marker, and fault
/// annotations overlay the affected time range as translucent bands.
///
/// Returns an empty string for an empty series so callers can embed the
/// result unconditionally.
#[must_use]
pub fn sparkline(series: &IterSeries) -> String {
    if series.is_empty() {
        return String::new();
    }
    let total = series.end_ns.max(1) as f64;
    let max_mean = series
        .samples
        .iter()
        .map(|s| s.mean_iter_ns())
        .fold(0.0f64, f64::max)
        .max(1.0);
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "<svg class=\"spark\" viewBox=\"0 0 {SPARK_W:.0} {SPARK_H:.0}\" \
         preserveAspectRatio=\"none\" role=\"img\" \
         aria-label=\"iteration time sparkline\">\n"
    ));
    for s in &series.samples {
        if s.iterations == 0 {
            continue; // zero-width correction bucket: nothing to draw
        }
        let x = s.start_ns as f64 / total * SPARK_W;
        let w = (s.wall_ns as f64 / total * SPARK_W).max(0.4);
        let h = (s.mean_iter_ns() / max_mean * (SPARK_H - 2.0)).max(0.5);
        let y = SPARK_H - h;
        let cat = dominant(
            s.compute_ns,
            s.data_wait_ns,
            s.comm_wait_ns,
            s.recovery_ns,
            s.straggler_ns,
        );
        if s.ff_iterations > 0 {
            out.push_str(&format!(
                "<rect class=\"ff\" x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" \
                 height=\"{h:.2}\" fill=\"{}\" fill-opacity=\"0.45\"/>\n",
                color(cat)
            ));
        } else {
            out.push_str(&format!(
                "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" \
                 fill=\"{}\"/>\n",
                color(cat)
            ));
        }
    }
    for a in &series.annotations {
        let x = a.start_ns as f64 / total * SPARK_W;
        let end = a.end_ns.min(series.end_ns) as f64 / total * SPARK_W;
        let w = (end - x).max(0.4);
        out.push_str(&format!(
            "<rect class=\"fault\" x=\"{x:.2}\" y=\"0\" width=\"{w:.2}\" \
             height=\"{SPARK_H:.0}\" fill=\"{}\" fill-opacity=\"0.18\">\
             <title>{}</title></rect>\n",
            annotation_color(&a.kind),
            escape(&a.label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_telemetry::series::{Annotation, SeriesSample};

    fn series() -> IterSeries {
        IterSeries {
            samples: vec![
                SeriesSample {
                    start_iter: 0,
                    iterations: 2,
                    start_ns: 0,
                    wall_ns: 200,
                    compute_ns: 150,
                    comm_wait_ns: 50,
                    ..SeriesSample::default()
                },
                SeriesSample {
                    start_iter: 2,
                    iterations: 10,
                    ff_iterations: 10,
                    start_ns: 200,
                    wall_ns: 800,
                    compute_ns: 700,
                    data_wait_ns: 100,
                    ..SeriesSample::default()
                },
            ],
            annotations: vec![Annotation {
                label: "preemption node1".to_string(),
                kind: "preemption".to_string(),
                start_ns: 50,
                end_ns: 150,
            }],
            end_ns: 1000,
        }
    }

    #[test]
    fn sparkline_marks_ff_and_annotations() {
        let svg = sparkline(&series());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("class=\"ff\""), "compressed region unmarked");
        assert!(svg.contains("class=\"fault\""), "annotation band missing");
        assert!(svg.contains("preemption node1"));
        assert_eq!(svg, sparkline(&series()), "sparkline not deterministic");
    }

    #[test]
    fn empty_series_renders_nothing() {
        assert_eq!(sparkline(&IterSeries::default()), "");
    }

    #[test]
    fn heat_color_is_deterministic_and_anchored() {
        assert_eq!(heat_color(0.0), "#ffffff");
        assert_eq!(heat_color(0.5), "#e4a11b");
        assert_eq!(heat_color(1.0), "#d1495b");
        assert_eq!(heat_color(-1.0), "#ffffff");
        assert_eq!(heat_color(2.0), "#d1495b");
    }

    #[test]
    fn timeline_strip_scales_to_wall() {
        let mut out = String::new();
        timeline_strip(
            &mut out,
            &[
                (0, 500, "compute".to_string()),
                (500, 1000, "network".to_string()),
            ],
            1000,
        );
        assert!(out.contains("width=\"500.00\""));
        assert!(out.contains(color("network")));
    }

    #[test]
    fn escape_and_fmt_ns_basics() {
        assert_eq!(escape("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
