//! Trace-driven what-if projection.
//!
//! Given a [`CriticalPath`], [`project`] answers "what would the traced
//! wall time become if one resource were `factor`× faster?" analytically
//! — no re-simulation, just arithmetic over the decomposed timeline:
//!
//! * **Bandwidth resources** ([`WhatIfResource::Network`],
//!   [`WhatIfResource::Interconnect`]): the collective's busy time `B`
//!   (sum of all-reduce spans) scales to `B / f`. Of the original `B`,
//!   `H = B − W` was hidden under backward compute (`W` = the exposed
//!   wait on the critical path, clamped to `B` so malformed traces stay
//!   monotone); the same overlap budget hides the scaled traffic, so
//!   the new exposed wait is `W′ = max(B/f − H, 0)` and the projected
//!   wall is `wall − W + W′`.
//! * **Pipeline resources** ([`WhatIfResource::PrepWorkers`],
//!   [`WhatIfResource::FetchBandwidth`]): the exposed stall scales
//!   inversely, `wall − S + S/f` — prep workers are embarrassingly
//!   parallel over samples and fetch time is bandwidth-bound.
//!
//! `factor == 1.0` short-circuits to the traced wall unchanged, making
//! the identity exact at integer nanoseconds (property-tested).
//!
//! The projection is first-order: it holds the span structure fixed and
//! ignores second-order effects (shifted contention between subsystems
//! sharing a bus, changed overlap scheduling). The workspace tests
//! cross-check it against an actual re-simulation with scaled
//! [hardware parameters] and assert agreement within
//! [`PROJECTION_TOLERANCE`].
//!
//! [hardware parameters]: https://docs.rs/stash-hwtopo

use crate::critical::{CriticalPath, PathCategory};

/// Maximum relative error `|projected − resimulated| / resimulated`
/// tolerated between the analytic projection and a ground-truth re-run
/// with scaled hardware parameters.
///
/// The projection is first-order (fixed span structure), so it drifts
/// when a scaling flips which resource dominates — e.g. 2× network on an
/// already compute-bound run changes almost nothing in truth but the
/// model also projects almost nothing, while on a comm-bound run both
/// move together. Empirically the error stays in single-digit percent
/// across the paper's configurations; 20 % bounds it with margin while
/// still failing on any structural mistake (which shows up as 2×+).
pub const PROJECTION_TOLERANCE: f64 = 0.20;

/// The resource a what-if scenario rescales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WhatIfResource {
    /// Inter-node (VM network) bandwidth.
    Network,
    /// Intra-node (PCIe / NVLink) bandwidth.
    Interconnect,
    /// CPU prep throughput (worker count / vCPUs).
    PrepWorkers,
    /// Storage fetch bandwidth.
    FetchBandwidth,
}

impl WhatIfResource {
    /// Every resource, in stable display order.
    pub const ALL: [WhatIfResource; 4] = [
        WhatIfResource::Network,
        WhatIfResource::Interconnect,
        WhatIfResource::PrepWorkers,
        WhatIfResource::FetchBandwidth,
    ];

    /// Stable lowercase label (JSON, CLI).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            WhatIfResource::Network => "network",
            WhatIfResource::Interconnect => "interconnect",
            WhatIfResource::PrepWorkers => "prep_workers",
            WhatIfResource::FetchBandwidth => "fetch_bandwidth",
        }
    }

    /// Parses a [`WhatIfResource::label`] back; `None` for unknown text.
    #[must_use]
    pub fn from_label(s: &str) -> Option<WhatIfResource> {
        WhatIfResource::ALL.iter().copied().find(|r| r.label() == s)
    }
}

/// Projects the traced wall time under `resource` scaled `factor`×
/// faster, in nanoseconds.
///
/// `factor` must be positive; `1.0` returns `path.wall_ns` exactly.
///
/// # Panics
///
/// Panics if `factor` is not finite and positive.
#[must_use]
pub fn project(path: &CriticalPath, resource: WhatIfResource, factor: f64) -> u64 {
    assert!(
        factor.is_finite() && factor > 0.0,
        "what-if factor must be positive, got {factor}"
    );
    #[allow(clippy::float_cmp)] // 1.0 is exactly representable
    if factor == 1.0 {
        return path.wall_ns;
    }
    let wall = path.wall_ns as f64;
    let projected = match resource {
        WhatIfResource::Network | WhatIfResource::Interconnect => {
            let cat = if resource == WhatIfResource::Network {
                PathCategory::Network
            } else {
                PathCategory::Interconnect
            };
            let exposed = path.total_ns(cat) as f64;
            if exposed == 0.0 {
                // Nothing of this class on the critical path: scaling a
                // fully hidden (or absent) resource changes nothing.
                return path.wall_ns;
            }
            let busy = path.comm_busy_ns as f64;
            // Only the part of the wait actually covered by collective
            // busy time scales with bandwidth; an uncovered remainder
            // (possible in hand-built traces with missing allreduce
            // spans) is held invariant so the projection stays monotone
            // in the factor.
            let covered = exposed.min(busy);
            let hidden = busy - covered;
            let new_covered = (busy / factor - hidden).max(0.0);
            wall - covered + new_covered
        }
        WhatIfResource::PrepWorkers => {
            let exposed = path.total_ns(PathCategory::Prep) as f64;
            wall - exposed + exposed / factor
        }
        WhatIfResource::FetchBandwidth => {
            let exposed = path.total_ns(PathCategory::Fetch) as f64;
            wall - exposed + exposed / factor
        }
    };
    projected.round().max(0.0) as u64
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::span::{Category, TraceEvent, Track};
    use stash_simkit::time::SimTime;

    fn sp(
        track: Track,
        cat: Category,
        name: &'static str,
        arg: u32,
        a: u64,
        b: u64,
    ) -> (u32, TraceEvent) {
        (
            0,
            TraceEvent::Span {
                track,
                category: cat,
                name,
                arg,
                start: SimTime::from_nanos(a),
                end: SimTime::from_nanos(b),
            },
        )
    }

    /// Backward [0, 100) overlapping an all-reduce [40, 140), exposed
    /// wait [100, 140): B = 100, W = 40, H = 60.
    fn comm_bound_path() -> CriticalPath {
        let g = Track::gpu(0, 0);
        let events = vec![
            sp(g, Category::Compute, "backward", 0, 0, 100),
            sp(g, Category::Network, "await_comm", 0, 100, 140),
            sp(Track::comm(), Category::Network, "allreduce", 0, 40, 140),
        ];
        CriticalPath::from_events(&events, 0, g)
    }

    #[test]
    fn identity_factor_is_exact() {
        let path = comm_bound_path();
        for r in WhatIfResource::ALL {
            assert_eq!(project(&path, r, 1.0), path.wall_ns);
        }
    }

    #[test]
    fn network_scaling_follows_the_overlap_model() {
        let path = comm_bound_path();
        assert_eq!(path.wall_ns, 140);
        assert_eq!(path.comm_busy_ns, 100);
        assert_eq!(path.total_ns(PathCategory::Network), 40);
        // 2x: B' = 50 < H = 60 → fully hidden, wall' = 100.
        assert_eq!(project(&path, WhatIfResource::Network, 2.0), 100);
        // 1.25x: B' = 80, W' = 20, wall' = 120.
        assert_eq!(project(&path, WhatIfResource::Network, 1.25), 120);
        // 0.5x (slower): B' = 200, W' = 140, wall' = 240.
        assert_eq!(project(&path, WhatIfResource::Network, 0.5), 240);
    }

    #[test]
    fn absent_resource_projects_no_change() {
        let path = comm_bound_path();
        assert_eq!(
            project(&path, WhatIfResource::Interconnect, 4.0),
            path.wall_ns
        );
        assert_eq!(
            project(&path, WhatIfResource::FetchBandwidth, 4.0),
            path.wall_ns
        );
    }

    #[test]
    fn pipeline_resources_scale_exposed_stall() {
        let g = Track::gpu(0, 0);
        let events = vec![
            sp(g, Category::Fetch, "await_batch", 0, 0, 80),
            sp(Track::loader(0, 0), Category::Prep, "prep", 0, 0, 60),
            sp(g, Category::Compute, "forward", 0, 80, 200),
        ];
        let path = CriticalPath::from_events(&events, 0, g);
        // Prep = 60, Fetch = 20.
        assert_eq!(project(&path, WhatIfResource::PrepWorkers, 2.0), 170);
        assert_eq!(project(&path, WhatIfResource::FetchBandwidth, 2.0), 190);
    }

    #[test]
    fn labels_round_trip() {
        for r in WhatIfResource::ALL {
            assert_eq!(WhatIfResource::from_label(r.label()), Some(r));
        }
        assert_eq!(WhatIfResource::from_label("gpu"), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = project(&comm_bound_path(), WhatIfResource::Network, 0.0);
    }
}
