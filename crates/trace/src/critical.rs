//! Critical-path decomposition of a traced epoch.
//!
//! The paper's headline analysis attributes every second of wall-clock
//! time to *what the GPU was doing* — computing, waiting on the
//! interconnect, waiting on the network, waiting on CPU prep, or waiting
//! on storage fetch. A Chrome trace shows the raw spans; this module
//! interprets them: [`CriticalPath::from_events`] walks one GPU rank's
//! timeline and classifies every nanosecond of `[0, wall]` into exactly
//! one [`PathCategory`], producing:
//!
//! * a gap-free segment list tiling the timeline (for SVG rendering),
//! * integer-nanosecond per-category totals that sum to the wall time
//!   *exactly* (the workspace property tests enforce this), and
//! * top-k blamed spans — which all-reduce bucket, which pipeline stage
//!   — ranked by critical-path contribution.
//!
//! The decomposition refines the raw span categories with two splits:
//!
//! * **Overlap** — compute time concurrent with an in-flight all-reduce
//!   bucket. It is still compute on the timeline, but it is the overlap
//!   budget that hides communication; the what-if engine
//!   ([`crate::whatif`]) needs it to project bandwidth changes.
//! * **Prep vs Fetch** — an `await_batch` stall is blamed on CPU prep
//!   for the part where some loader worker on the same node was
//!   decoding, and on fetch (storage/H2D) for the remainder.
//!
//! Both splits partition the original span, so raw-category totals are
//! preserved: `Compute + Overlap` equals the engine's compute
//! accumulator, `Prep + Fetch` its data-wait, and
//! `Interconnect + Network` its comm-wait, to the nanosecond.

use std::collections::BTreeMap;

use stash_simkit::time::SimDuration;

use crate::span::{Category, TraceEvent, Track, TrackKind};

/// The stall class one critical-path interval is attributed to.
///
/// Unlike [`Category`] this is a *partition* of wall-clock time: every
/// nanosecond of the traced window belongs to exactly one variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathCategory {
    /// GPU kernels with no concurrent collective.
    Compute,
    /// GPU kernels concurrent with an in-flight all-reduce bucket — the
    /// overlap budget hiding communication.
    Overlap,
    /// Exposed intra-node gradient-synchronisation stall.
    Interconnect,
    /// Exposed inter-node gradient-synchronisation stall.
    Network,
    /// Input-batch stall while CPU workers were decoding.
    Prep,
    /// Input-batch stall on storage / H2D with no concurrent prep.
    Fetch,
    /// Fault-recovery stall: waiting out a preemption restart plus
    /// replaying the iterations lost since the last checkpoint.
    Recovery,
    /// Extra kernel time inflicted by a transient straggler window.
    Straggler,
    /// Time outside any traced span on the rank (pipeline fill, barrier
    /// skew against slower ranks).
    Idle,
}

impl PathCategory {
    /// Every category, in stable display order.
    pub const ALL: [PathCategory; 9] = [
        PathCategory::Compute,
        PathCategory::Overlap,
        PathCategory::Interconnect,
        PathCategory::Network,
        PathCategory::Prep,
        PathCategory::Fetch,
        PathCategory::Recovery,
        PathCategory::Straggler,
        PathCategory::Idle,
    ];

    /// Stable lowercase label (JSON keys, HTML legend).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            PathCategory::Compute => "compute",
            PathCategory::Overlap => "overlap",
            PathCategory::Interconnect => "interconnect",
            PathCategory::Network => "network",
            PathCategory::Prep => "prep",
            PathCategory::Fetch => "fetch",
            PathCategory::Recovery => "recovery",
            PathCategory::Straggler => "straggler",
            PathCategory::Idle => "idle",
        }
    }

    /// Parses a [`PathCategory::label`] back; `None` for unknown text.
    #[must_use]
    pub fn from_label(s: &str) -> Option<PathCategory> {
        PathCategory::ALL.iter().copied().find(|c| c.label() == s)
    }
}

/// One classified interval of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// Interval start, nanoseconds on the simulation clock.
    pub start_ns: u64,
    /// Interval end (`> start_ns`).
    pub end_ns: u64,
    /// The stall class this interval is attributed to.
    pub category: PathCategory,
    /// Name of the span the interval came from (`"idle"` for gaps).
    pub name: &'static str,
    /// Bucket / backward-segment index of the blamed span, 0 when there
    /// is nothing to distinguish.
    pub arg: u32,
}

impl PathSegment {
    /// The interval's length in nanoseconds.
    #[must_use]
    pub fn len_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// One `(name, arg)` group's total critical-path contribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlamedSpan {
    /// Span name (`"allreduce"`, `"backward"`, `"await_batch"`, ...).
    pub name: &'static str,
    /// Bucket / segment index within `name`.
    pub arg: u32,
    /// The stall class of the contribution.
    pub category: PathCategory,
    /// Total nanoseconds of critical path attributed to this group.
    pub contribution_ns: u64,
}

/// A classified rank timeline: gap-free segments, exact per-category
/// totals, and ranked blame.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// End of the traced window: the latest span end across *all* tracks
    /// of the process, so rank skew shows up as trailing idle.
    pub wall_ns: u64,
    /// Classified intervals tiling `[0, wall_ns]` exactly, in time order.
    pub segments: Vec<PathSegment>,
    /// Total busy time of the collective (sum of all-reduce span
    /// lengths) — the what-if engine's bandwidth-scaling base.
    pub comm_busy_ns: u64,
    totals: BTreeMap<PathCategory, u64>,
}

impl CriticalPath {
    /// Decomposes the timeline of `gpu_track` (its `kind` must be
    /// [`TrackKind::Gpu`]) within `process`, classifying every
    /// nanosecond of `[0, wall]`.
    ///
    /// `events` is the sink format: `(process, event)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_track` is not a GPU lane.
    #[must_use]
    pub fn from_events(
        events: &[(u32, TraceEvent)],
        process: u32,
        gpu_track: Track,
    ) -> CriticalPath {
        assert_eq!(
            gpu_track.kind,
            TrackKind::Gpu,
            "critical path walks a GPU lane"
        );

        let mut gpu_spans: Vec<(u64, u64, &'static str, u32, Category)> = Vec::new();
        let mut allreduce: Vec<(u64, u64, u32)> = Vec::new();
        let mut prep: Vec<(u64, u64)> = Vec::new();
        let mut wall_ns: u64 = 0;

        for (p, ev) in events {
            if *p != process {
                continue;
            }
            if let TraceEvent::Span {
                track,
                category,
                name,
                arg,
                start,
                end,
            } = ev
            {
                let (s, e) = (start.as_nanos(), end.as_nanos());
                wall_ns = wall_ns.max(e);
                if *track == gpu_track {
                    gpu_spans.push((s, e, name, *arg, *category));
                } else if track.kind == TrackKind::Comm && *name == "allreduce" {
                    allreduce.push((s, e, *arg));
                } else if track.kind == TrackKind::Loader
                    && track.node == gpu_track.node
                    && *name == "prep"
                {
                    prep.push((s, e));
                }
            }
        }
        gpu_spans.sort_by_key(|&(s, e, ..)| (s, e));
        allreduce.sort_by_key(|&(s, e, _)| (s, e));
        let prep_union = union(&mut prep);
        let comm_busy_ns = allreduce.iter().map(|&(s, e, _)| e - s).sum();

        let mut path = CriticalPath {
            wall_ns,
            comm_busy_ns,
            ..CriticalPath::default()
        };

        let mut cursor: u64 = 0;
        for &(start, end, name, arg, category) in &gpu_spans {
            // The engine emits rank spans back-to-back; clamp defensively
            // so a malformed custom trace still tiles without overlap.
            let start = start.max(cursor);
            if end <= start {
                continue;
            }
            if start > cursor {
                path.push(cursor, start, PathCategory::Idle, "idle", 0);
            }
            match category {
                Category::Compute => {
                    // Compute concurrent with an in-flight bucket is the
                    // overlap budget; attribute those pieces to the bucket.
                    path.split_against(
                        start,
                        end,
                        &allreduce,
                        name,
                        arg,
                        PathCategory::Compute,
                        PathCategory::Overlap,
                        BlameArg::Own,
                    );
                }
                Category::Fetch => {
                    let prep_here: Vec<(u64, u64, u32)> =
                        prep_union.iter().map(|&(s, e)| (s, e, 0)).collect();
                    path.split_against(
                        start,
                        end,
                        &prep_here,
                        name,
                        arg,
                        PathCategory::Fetch,
                        PathCategory::Prep,
                        BlameArg::Own,
                    );
                }
                Category::Interconnect | Category::Network => {
                    let cat = if category == Category::Network {
                        PathCategory::Network
                    } else {
                        PathCategory::Interconnect
                    };
                    // The part of the wait covered by bucket b's
                    // all-reduce is blamed on bucket b.
                    path.split_against(
                        start,
                        end,
                        &allreduce,
                        name,
                        arg,
                        cat,
                        cat,
                        BlameArg::Cover,
                    );
                }
                // Faulted time maps 1:1 — the engine already isolates it
                // into dedicated spans, so no cover-splitting is needed.
                Category::Recovery => {
                    path.push(start, end, PathCategory::Recovery, name, arg);
                }
                Category::Straggler => {
                    path.push(start, end, PathCategory::Straggler, name, arg);
                }
                // Prep/Solver/Cache spans never appear on a GPU lane, but
                // classify them by their raw category if a custom trace
                // puts them there.
                Category::Prep => path.push(start, end, PathCategory::Prep, name, arg),
                Category::Solver | Category::Cache => {
                    path.push(start, end, PathCategory::Idle, name, arg);
                }
            }
            cursor = end;
        }
        if cursor < wall_ns {
            path.push(cursor, wall_ns, PathCategory::Idle, "idle", 0);
        }
        path
    }

    /// Splits `[start, end]` against the sorted, disjoint `covers`
    /// intervals: covered pieces get `covered_cat`, the rest `base_cat`.
    /// `blame` selects whether covered pieces carry the cover's `arg`
    /// (per-bucket blame on waits) or the span's own.
    #[allow(clippy::too_many_arguments)]
    fn split_against(
        &mut self,
        start: u64,
        end: u64,
        covers: &[(u64, u64, u32)],
        name: &'static str,
        arg: u32,
        base_cat: PathCategory,
        covered_cat: PathCategory,
        blame: BlameArg,
    ) {
        let mut pos = start;
        for &(cs, ce, carg) in covers {
            if ce <= pos {
                continue;
            }
            if cs >= end {
                break;
            }
            let s = cs.max(pos);
            let e = ce.min(end);
            if s > pos {
                self.push(pos, s, base_cat, name, arg);
            }
            if e > s {
                let a = match blame {
                    BlameArg::Own => arg,
                    BlameArg::Cover => carg,
                };
                self.push(s, e, covered_cat, name, a);
            }
            pos = e.max(pos);
            if pos >= end {
                break;
            }
        }
        if pos < end {
            self.push(pos, end, base_cat, name, arg);
        }
    }

    fn push(&mut self, start: u64, end: u64, category: PathCategory, name: &'static str, arg: u32) {
        debug_assert!(end > start);
        self.segments.push(PathSegment {
            start_ns: start,
            end_ns: end,
            category,
            name,
            arg,
        });
        *self.totals.entry(category).or_insert(0) += end - start;
    }

    /// Total critical-path time attributed to `category`, integer ns.
    #[must_use]
    pub fn total(&self, category: PathCategory) -> SimDuration {
        SimDuration::from_nanos(self.totals.get(&category).copied().unwrap_or(0))
    }

    /// Total critical-path time attributed to `category`, raw ns.
    #[must_use]
    pub fn total_ns(&self, category: PathCategory) -> u64 {
        self.totals.get(&category).copied().unwrap_or(0)
    }

    /// Sum of all category totals — equal to [`CriticalPath::wall_ns`]
    /// by construction (the property tests assert it).
    #[must_use]
    pub fn path_len_ns(&self) -> u64 {
        self.totals.values().sum()
    }

    /// The `k` largest `(name, arg)` contributors to *stall* time
    /// (everything except pure compute), descending; ties broken by
    /// `(name, arg)` so the ranking is deterministic.
    #[must_use]
    pub fn top_blamed(&self, k: usize) -> Vec<BlamedSpan> {
        let mut by_group: BTreeMap<(&'static str, u32, PathCategory), u64> = BTreeMap::new();
        for seg in &self.segments {
            if seg.category == PathCategory::Compute || seg.category == PathCategory::Idle {
                continue;
            }
            *by_group
                .entry((seg.name, seg.arg, seg.category))
                .or_insert(0) += seg.len_ns();
        }
        let mut blamed: Vec<BlamedSpan> = by_group
            .into_iter()
            .map(|((name, arg, category), contribution_ns)| BlamedSpan {
                name,
                arg,
                category,
                contribution_ns,
            })
            .collect();
        blamed.sort_by(|a, b| {
            b.contribution_ns
                .cmp(&a.contribution_ns)
                .then(a.name.cmp(b.name))
                .then(a.arg.cmp(&b.arg))
        });
        blamed.truncate(k);
        blamed
    }
}

/// Which `arg` a covered piece carries in [`CriticalPath::split_against`].
#[derive(Debug, Clone, Copy)]
enum BlameArg {
    /// The split span's own arg (compute segments keep their layer id).
    Own,
    /// The covering interval's arg (waits are blamed on the bucket).
    Cover,
}

/// Merges possibly-overlapping intervals into a disjoint sorted union.
fn union(intervals: &mut [(u64, u64)]) -> Vec<(u64, u64)> {
    intervals.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    for &mut (s, e) in intervals {
        if e <= s {
            continue;
        }
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_simkit::time::SimTime;

    fn sp(
        track: Track,
        cat: Category,
        name: &'static str,
        arg: u32,
        a: u64,
        b: u64,
    ) -> (u32, TraceEvent) {
        (
            0,
            TraceEvent::Span {
                track,
                category: cat,
                name,
                arg,
                start: SimTime::from_nanos(a),
                end: SimTime::from_nanos(b),
            },
        )
    }

    #[test]
    fn tiles_the_wall_exactly_with_idle_gaps() {
        let g = Track::gpu(0, 0);
        let events = vec![
            sp(g, Category::Compute, "forward", 0, 10, 30),
            sp(g, Category::Compute, "step", 0, 40, 50),
            // Another rank runs longer: trailing idle.
            sp(Track::gpu(0, 1), Category::Compute, "forward", 0, 0, 70),
        ];
        let cp = CriticalPath::from_events(&events, 0, g);
        assert_eq!(cp.wall_ns, 70);
        assert_eq!(cp.path_len_ns(), 70);
        assert_eq!(cp.total_ns(PathCategory::Compute), 30);
        assert_eq!(cp.total_ns(PathCategory::Idle), 40);
        let starts: Vec<u64> = cp.segments.iter().map(|s| s.start_ns).collect();
        let ends: Vec<u64> = cp.segments.iter().map(|s| s.end_ns).collect();
        assert_eq!(starts, vec![0, 10, 30, 40, 50]);
        assert_eq!(ends, vec![10, 30, 40, 50, 70]);
    }

    #[test]
    fn overlap_split_preserves_compute_total() {
        let g = Track::gpu(0, 0);
        let events = vec![
            sp(g, Category::Compute, "backward", 1, 0, 100),
            sp(
                Track::comm(),
                Category::Interconnect,
                "allreduce",
                0,
                30,
                60,
            ),
        ];
        let cp = CriticalPath::from_events(&events, 0, g);
        assert_eq!(cp.total_ns(PathCategory::Compute), 70);
        assert_eq!(cp.total_ns(PathCategory::Overlap), 30);
        assert_eq!(cp.comm_busy_ns, 30);
        assert_eq!(
            cp.total_ns(PathCategory::Compute) + cp.total_ns(PathCategory::Overlap),
            100
        );
    }

    #[test]
    fn await_batch_splits_into_prep_and_fetch() {
        let g = Track::gpu(0, 0);
        let events = vec![
            sp(g, Category::Fetch, "await_batch", 0, 0, 100),
            // Two workers decode with a hole in [40, 70).
            sp(Track::loader(0, 0), Category::Prep, "prep", 0, 0, 30),
            sp(Track::loader(0, 1), Category::Prep, "prep", 0, 20, 40),
            sp(Track::loader(0, 0), Category::Prep, "prep", 0, 70, 90),
            // A different node's prep must not count.
            sp(Track::loader(1, 0), Category::Prep, "prep", 0, 40, 70),
        ];
        let cp = CriticalPath::from_events(&events, 0, g);
        assert_eq!(cp.total_ns(PathCategory::Prep), 60);
        assert_eq!(cp.total_ns(PathCategory::Fetch), 40);
    }

    #[test]
    fn comm_wait_is_blamed_per_bucket() {
        let g = Track::gpu(0, 0);
        let events = vec![
            sp(g, Category::Network, "await_comm", 0, 100, 160),
            sp(Track::comm(), Category::Network, "allreduce", 2, 90, 130),
            sp(Track::comm(), Category::Network, "allreduce", 3, 130, 160),
        ];
        let cp = CriticalPath::from_events(&events, 0, g);
        assert_eq!(cp.total_ns(PathCategory::Network), 60);
        let blamed = cp.top_blamed(10);
        // Equal contributions tie-break by arg ascending.
        assert_eq!(blamed[0].arg, 2);
        assert_eq!(blamed[0].contribution_ns, 30);
        assert_eq!(blamed[1].arg, 3);
        assert_eq!(blamed[1].contribution_ns, 30);
    }

    #[test]
    fn other_processes_are_ignored() {
        let g = Track::gpu(0, 0);
        let events = vec![
            sp(g, Category::Compute, "forward", 0, 0, 10),
            (1, sp(g, Category::Compute, "forward", 0, 0, 500).1),
        ];
        let cp = CriticalPath::from_events(&events, 0, g);
        assert_eq!(cp.wall_ns, 10);
    }

    #[test]
    fn labels_round_trip() {
        for c in PathCategory::ALL {
            assert_eq!(PathCategory::from_label(c.label()), Some(c));
        }
        assert_eq!(PathCategory::from_label("bogus"), None);
    }
}
