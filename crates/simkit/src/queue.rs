//! Deterministic event queue.
//!
//! [`EventQueue`] is the heart of the discrete-event engine: a priority
//! queue of `(time, payload)` pairs with strictly deterministic ordering —
//! ties on the timestamp are broken by insertion order (FIFO), so a given
//! event schedule always replays identically. Events can be cancelled via
//! the [`EventKey`] returned at scheduling time.
//!
//! Internally the queue is a lazy-deletion binary heap indexed by a
//! generation-counted slot table: cancellation is O(1) (flip the slot's
//! generation; the heap entry becomes a tombstone that `pop` skips), and
//! the slot table recycles entries through a free list so a steady-state
//! schedule/deliver cycle performs no heap allocation at all.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
///
/// Keys are generation-tagged: once the event is delivered or cancelled its
/// slot is recycled under a bumped generation, so a stale key can never
/// cancel an unrelated later event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    idx: u32,
    gen: u32,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    idx: u32,
    gen: u32,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// The queue also tracks the current simulation clock: popping an event
/// advances the clock to the event's timestamp. Scheduling into the past is
/// a logic error and panics in debug builds (release builds clamp to `now`).
///
/// # Examples
///
/// ```
/// use stash_simkit::queue::EventQueue;
/// use stash_simkit::time::{SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_millis(5), "b");
/// q.schedule_in(SimDuration::from_millis(1), "a");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
/// assert_eq!(q.now(), SimTime::from_nanos(1_000_000));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    next_seq: u64,
    /// Generation per slot; a heap entry is live iff its recorded generation
    /// still matches its slot's.
    slot_gen: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    /// Deepest `live` has been since the last [`EventQueue::take_depth_high_water`].
    window_hw: usize,
    scheduled: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            slot_gen: Vec::new(),
            free: Vec::new(),
            live: 0,
            window_hw: 0,
            scheduled: 0,
            delivered: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at` and returns a cancellation
    /// key.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventKey {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.live += 1;
        self.window_hw = self.window_hw.max(self.live);
        stash_telemetry::metrics::QUEUE_PUSHED.inc();
        stash_telemetry::metrics::QUEUE_DEPTH_HIGH_WATER.record_max(self.live as u64);
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let Ok(idx) = u32::try_from(self.slot_gen.len()) else {
                    unreachable!("slot index overflow: more than u32::MAX live events")
                };
                self.slot_gen.push(0);
                idx
            }
        };
        let gen = self.slot_gen[idx as usize];
        self.heap.push(Reverse(Entry {
            at,
            seq,
            idx,
            gen,
            payload,
        }));
        EventKey { idx, gen }
    }

    /// Schedules `payload` after a relative delay from the current clock.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) -> EventKey {
        let at = self.now + delay;
        self.schedule_at(at, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (cancelling an already-delivered or unknown key is a
    /// no-op returning `false`).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        match self.slot_gen.get_mut(key.idx as usize) {
            Some(gen) if *gen == key.gen => {
                // Bump the generation: the heap entry turns into a tombstone
                // and the slot becomes reusable immediately.
                *gen = gen.wrapping_add(1);
                self.free.push(key.idx);
                self.live -= 1;
                stash_telemetry::metrics::QUEUE_CANCELLED.inc();
                true
            }
            _ => false,
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.slot_gen[entry.idx as usize] != entry.gen {
                continue; // tombstone: cancelled before delivery
            }
            self.slot_gen[entry.idx as usize] = entry.gen.wrapping_add(1);
            self.free.push(entry.idx);
            self.live -= 1;
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.delivered += 1;
            stash_telemetry::metrics::QUEUE_POPPED.inc();
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next pending (non-cancelled) event without popping
    /// it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily drop tombstoned entries from the front.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.slot_gen[entry.idx as usize] != entry.gen {
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (scheduled, not yet delivered or cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Deepest the queue has been since the last call (or construction /
    /// [`EventQueue::reset`]), then restarts the window at the current
    /// depth. Lets a caller sample per-window high-water marks (e.g. one
    /// per simulated iteration) without scanning the queue.
    pub fn take_depth_high_water(&mut self) -> u64 {
        let hw = self.window_hw as u64;
        self.window_hw = self.live;
        hw
    }

    /// Total events scheduled over the queue's lifetime.
    #[must_use]
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events delivered over the queue's lifetime.
    #[must_use]
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Returns the queue to its freshly-constructed state while keeping the
    /// heap, slot-table and free-list capacity, so a reused queue behaves
    /// bit-identically to a new one without reallocating.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.slot_gen.clear();
        self.free.clear();
        self.now = SimTime::ZERO;
        self.next_seq = 0;
        self.live = 0;
        self.window_hw = 0;
        self.scheduled = 0;
        self.delivered = 0;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), "late");
        q.schedule_at(SimTime::from_nanos(5), "first");
        q.schedule_at(SimTime::from_nanos(5), "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().as_nanos(), 7_000_000);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let k = q.schedule_at(SimTime::from_nanos(1), "dead");
        q.schedule_at(SimTime::from_nanos(2), "alive");
        assert!(q.cancel(k));
        assert!(!q.cancel(k), "double cancel is a no-op");
        assert_eq!(q.pop().unwrap().1, "alive");
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let k = q.schedule_at(SimTime::from_nanos(1), 1);
        q.schedule_at(SimTime::from_nanos(9), 2);
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert!(!q.is_empty());
    }

    #[test]
    fn counts_track_lifecycle() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(1), ());
        q.schedule_at(SimTime::from_nanos(2), ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.delivered_count(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventKey { idx: 42, gen: 0 }));
    }

    #[test]
    fn stale_key_does_not_cancel_slot_reuse() {
        let mut q = EventQueue::new();
        let k1 = q.schedule_at(SimTime::from_nanos(1), "a");
        assert!(q.cancel(k1));
        // The slot is recycled for the next event under a new generation.
        let k2 = q.schedule_at(SimTime::from_nanos(2), "b");
        assert!(!q.cancel(k1), "stale key must not cancel the reused slot");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(!q.cancel(k2), "delivered key must not cancel");
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(3), 1);
        q.pop();
        q.reset();
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.scheduled_count(), 0);
        assert_eq!(q.delivered_count(), 0);
        assert!(q.is_empty());
        q.schedule_at(SimTime::from_nanos(1), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 2)));
    }
}
