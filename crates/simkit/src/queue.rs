//! Deterministic event queue.
//!
//! [`EventQueue`] is the heart of the discrete-event engine: a priority
//! queue of `(time, payload)` pairs with strictly deterministic ordering —
//! ties on the timestamp are broken by insertion order (FIFO), so a given
//! event schedule always replays identically. Events can be cancelled via
//! the [`EventKey`] returned at scheduling time.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// The queue also tracks the current simulation clock: popping an event
/// advances the clock to the event's timestamp. Scheduling into the past is
/// a logic error and panics in debug builds (release builds clamp to `now`).
///
/// # Examples
///
/// ```
/// use stash_simkit::queue::EventQueue;
/// use stash_simkit::time::{SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_millis(5), "b");
/// q.schedule_in(SimDuration::from_millis(1), "a");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
/// assert_eq!(q.now(), SimTime::from_nanos(1_000_000));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    next_seq: u64,
    cancelled: HashSet<u64>,
    scheduled: u64,
    delivered: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            cancelled: HashSet::new(),
            scheduled: 0,
            delivered: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at` and returns a cancellation
    /// key.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventKey {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        EventKey(seq)
    }

    /// Schedules `payload` after a relative delay from the current clock.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) -> EventKey {
        let at = self.now + delay;
        self.schedule_at(at, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (cancelling an already-delivered or unknown key is a
    /// no-op returning `false`).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.0 >= self.next_seq {
            return false;
        }
        // Only mark if it has not been delivered yet; delivery removes the
        // seq from consideration because pop skips tombstones lazily.
        self.cancelled.insert(key.0)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now);
            self.now = entry.at;
            self.delivered += 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Timestamp of the next pending (non-cancelled) event without popping
    /// it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Lazily drop tombstoned entries from the front.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of pending (possibly including tombstoned) entries. Intended
    /// for diagnostics; tombstones make this an upper bound (which is why
    /// `is_empty` — which is exact — takes `&mut self` instead).
    #[must_use]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Total events scheduled over the queue's lifetime.
    #[must_use]
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// Total events delivered over the queue's lifetime.
    #[must_use]
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), "late");
        q.schedule_at(SimTime::from_nanos(5), "first");
        q.schedule_at(SimTime::from_nanos(5), "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().as_nanos(), 7_000_000);
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let k = q.schedule_at(SimTime::from_nanos(1), "dead");
        q.schedule_at(SimTime::from_nanos(2), "alive");
        assert!(q.cancel(k));
        assert!(!q.cancel(k), "double cancel is a no-op");
        assert_eq!(q.pop().unwrap().1, "alive");
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let k = q.schedule_at(SimTime::from_nanos(1), 1);
        q.schedule_at(SimTime::from_nanos(9), 2);
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert!(!q.is_empty());
    }

    #[test]
    fn counts_track_lifecycle() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(1), ());
        q.schedule_at(SimTime::from_nanos(2), ());
        q.pop();
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.delivered_count(), 1);
    }

    #[test]
    fn cancel_unknown_key_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventKey(42)));
    }
}
