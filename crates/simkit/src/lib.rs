//! # stash-simkit — deterministic discrete-event simulation engine
//!
//! The foundation of the Stash reproduction: a minimal, fully deterministic
//! discrete-event simulation (DES) toolkit. Higher layers (the flow-level
//! network simulator, the data pipeline, the distributed-training engine)
//! drive an [`queue::EventQueue`] themselves — the engine deliberately does
//! *not* own user state, which keeps borrows simple and replay exact.
//!
//! Components:
//!
//! * [`time`] — integer-nanosecond [`time::SimTime`] / [`time::SimDuration`];
//! * [`queue`] — deterministic priority queue with FIFO tie-breaking and
//!   cancellation;
//! * [`rng`] — seedable `xoshiro256**` PRNG with stream forking;
//! * [`stats`] — online counters, Welford summaries and time-weighted means;
//! * [`histogram`] — log-bucketed duration histograms with quantiles.
//!
//! # Examples
//!
//! A tiny two-event simulation:
//!
//! ```
//! use stash_simkit::prelude::*;
//!
//! #[derive(Debug)]
//! enum Ev { Ping, Pong }
//!
//! let mut q: EventQueue<Ev> = EventQueue::new();
//! q.schedule_in(SimDuration::from_micros(10), Ev::Ping);
//! let mut log = Vec::new();
//! while let Some((t, ev)) = q.pop() {
//!     match ev {
//!         Ev::Ping => {
//!             log.push((t, "ping"));
//!             q.schedule_in(SimDuration::from_micros(5), Ev::Pong);
//!         }
//!         Ev::Pong => log.push((t, "pong")),
//!     }
//! }
//! assert_eq!(log.len(), 2);
//! assert_eq!(q.now().as_nanos(), 15_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod histogram;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::histogram::LogHistogram;
    pub use crate::queue::{EventKey, EventQueue};
    pub use crate::rng::DetRng;
    pub use crate::stats::{Counter, Summary, TimeWeighted};
    pub use crate::time::{SimDuration, SimTime};
}
