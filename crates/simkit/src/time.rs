//! Simulated time types.
//!
//! The simulator measures time in integer **nanoseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible. Two newtypes are
//! provided: [`SimTime`], an absolute instant on the simulation clock, and
//! [`SimDuration`], a span between two instants. The types deliberately
//! mirror `std::time::{Instant, Duration}` arithmetic but stay fully
//! deterministic and serializable.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use stash_simkit::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use stash_simkit::time::SimDuration;
///
/// let d = SimDuration::from_secs_f64(1.5);
/// assert_eq!(d.as_millis(), 1500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel when searching for a minimum.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier <= self,
            "duration_since: earlier={earlier} > self={self}"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncated).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the span is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero rather than underflowing.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    #[must_use]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Ratio of two spans as a float. Returns 0 when `rhs` is zero.
    #[must_use]
    pub fn ratio(self, rhs: SimDuration) -> f64 {
        if rhs.is_zero() {
            0.0
        } else {
            self.0 as f64 / rhs.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 8_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).duration_since(t), d);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_ratio_and_scaling() {
        let a = SimDuration::from_millis(150);
        let b = SimDuration::from_millis(100);
        assert!((a.ratio(b) - 1.5).abs() < 1e-12);
        assert_eq!(a.ratio(SimDuration::ZERO), 0.0);
        assert_eq!(b.mul_f64(2.5).as_millis(), 250);
    }

    #[test]
    fn saturating_ops() {
        let small = SimDuration::from_nanos(5);
        let big = SimDuration::from_nanos(10);
        assert_eq!(small.saturating_sub(big), SimDuration::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(big), SimTime::MAX);
    }

    #[test]
    fn display_uses_human_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
    }
}
