//! Log-bucketed duration histogram.
//!
//! Iteration times and stall durations span microseconds to minutes, so a
//! fixed-width histogram is useless. [`LogHistogram`] uses
//! logarithmically-spaced buckets (configurable buckets per decade) and
//! supports quantile queries — enough for the profiler's distributional
//! reporting without external dependencies.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A histogram over durations with logarithmic buckets.
///
/// # Examples
///
/// ```
/// use stash_simkit::histogram::LogHistogram;
/// use stash_simkit::time::SimDuration;
///
/// let mut h = LogHistogram::new(10);
/// for ms in [1_u64, 2, 3, 10, 100] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5).unwrap() >= SimDuration::from_millis(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets_per_decade: u32,
    counts: Vec<u64>,
    total: u64,
    zero_count: u64,
}

impl LogHistogram {
    /// Creates a histogram with `buckets_per_decade` resolution (10 gives
    /// ~26% relative bucket width).
    ///
    /// # Panics
    ///
    /// Panics if `buckets_per_decade` is zero.
    #[must_use]
    pub fn new(buckets_per_decade: u32) -> Self {
        assert!(
            buckets_per_decade > 0,
            "need at least one bucket per decade"
        );
        LogHistogram {
            buckets_per_decade,
            counts: Vec::new(),
            total: 0,
            zero_count: 0,
        }
    }

    fn bucket_of(&self, d: SimDuration) -> Option<usize> {
        let ns = d.as_nanos();
        if ns == 0 {
            return None;
        }
        let idx = (ns as f64).log10() * f64::from(self.buckets_per_decade);
        Some(idx.floor().max(0.0) as usize)
    }

    fn bucket_lower_bound(&self, idx: usize) -> SimDuration {
        let exp = idx as f64 / f64::from(self.buckets_per_decade);
        SimDuration::from_nanos(10f64.powf(exp) as u64)
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.total += 1;
        match self.bucket_of(d) {
            None => self.zero_count += 1,
            Some(idx) => {
                if idx >= self.counts.len() {
                    self.counts.resize(idx + 1, 0);
                }
                self.counts[idx] += 1;
            }
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Lower bound of the bucket containing the `q`-quantile
    /// (`0 <= q <= 1`), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.zero_count;
        if seen >= target {
            return Some(SimDuration::ZERO);
        }
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_lower_bound(idx));
            }
        }
        Some(self.bucket_lower_bound(self.counts.len().saturating_sub(1)))
    }

    /// Merges another histogram with the same resolution.
    ///
    /// # Panics
    ///
    /// Panics when resolutions differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.buckets_per_decade, other.buckets_per_decade,
            "histogram resolutions differ"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.zero_count += other.zero_count;
        self.total += other.total;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LogHistogram::new(20);
        for i in 1..=1000_u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.quantile(0.5).unwrap();
        // Bucket lower bound of the median (~500 us) within one bucket.
        assert!(p50 >= SimDuration::from_micros(350), "{p50}");
        assert!(p50 <= SimDuration::from_micros(600), "{p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 > p50);
        assert!(h.quantile(0.0).unwrap() <= SimDuration::from_micros(2));
    }

    #[test]
    fn zero_durations_count() {
        let mut h = LogHistogram::new(10);
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_millis(1));
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.25).unwrap(), SimDuration::ZERO);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new(10);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::new(10);
        let mut b = LogHistogram::new(10);
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_secs(1));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0).unwrap() >= SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "resolutions differ")]
    fn merge_rejects_mismatched_resolution() {
        let mut a = LogHistogram::new(10);
        let b = LogHistogram::new(20);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn quantile_bounds_checked() {
        let h = LogHistogram::new(10);
        let _ = h.quantile(1.5);
    }
}
