//! Deterministic pseudo-random number generation.
//!
//! The simulator must replay identically from a seed, so it carries its own
//! small PRNG rather than depending on ambient randomness. [`DetRng`] is a
//! `splitmix64`/`xoshiro256**` combination: `splitmix64` expands the seed
//! into the 256-bit state required by `xoshiro256**`, which then provides
//! high-quality, fast output. This is the same construction recommended by
//! the xoshiro authors.

use serde::{Deserialize, Serialize};

/// A small, fast, deterministic PRNG (`xoshiro256**` seeded via
/// `splitmix64`).
///
/// # Examples
///
/// ```
/// use stash_simkit::rng::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent child generator; used to give each simulated
    /// component its own stream so adding a consumer does not perturb
    /// others.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Lemire's multiply-shift rejection method (bias-free).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo < bound {
                let threshold = bound.wrapping_neg() % bound;
                if lo < threshold {
                    continue;
                }
            }
            return (m >> 64) as u64;
        }
    }

    /// Uniform float in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_below_covers_all_residues() {
        let mut r = DetRng::new(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = DetRng::new(42);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn uniform_empty_range_returns_lo() {
        let mut r = DetRng::new(1);
        assert_eq!(r.uniform(3.0, 3.0), 3.0);
        assert_eq!(r.uniform(4.0, 2.0), 4.0);
    }
}
