//! Online statistics used by the simulator's instrumentation.
//!
//! Three small accumulators cover the profiler's needs:
//!
//! * [`Counter`] — monotonically increasing event counts;
//! * [`Summary`] — scalar samples (mean / min / max / variance via Welford);
//! * [`TimeWeighted`] — piecewise-constant signals integrated over simulated
//!   time (e.g. "how many flows were active, on average").

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// New counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Welford online summary of scalar samples.
///
/// # Examples
///
/// ```
/// use stash_simkit::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.min(), Some(1.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Integrates a piecewise-constant signal over simulated time.
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the accumulator
/// weights each value by how long it was held.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    weighted_sum: f64,
    observed: SimDuration,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new(0.0, SimTime::ZERO)
    }
}

impl TimeWeighted {
    /// Starts tracking at `t0` with initial `value`.
    #[must_use]
    pub fn new(value: f64, t0: SimTime) -> Self {
        TimeWeighted {
            value,
            last_change: t0,
            weighted_sum: 0.0,
            observed: SimDuration::ZERO,
        }
    }

    /// Updates the signal to `value` at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        self.advance(now);
        self.value = value;
    }

    /// Adds `delta` to the signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_change);
        self.weighted_sum += self.value * dt.as_secs_f64();
        self.observed += dt;
        self.last_change = now;
    }

    /// Time-weighted mean of the signal up to `now`.
    #[must_use]
    pub fn mean_until(&self, now: SimTime) -> f64 {
        let mut copy = *self;
        copy.advance(now);
        if copy.observed.is_zero() {
            copy.value
        } else {
            copy.weighted_sum / copy.observed.as_secs_f64()
        }
    }

    /// Current (instantaneous) value of the signal.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_matches_closed_form() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(1.0, SimTime::ZERO);
        tw.set(SimTime::from_nanos(1_000_000_000), 3.0); // 1.0 held for 1s
        tw.set(SimTime::from_nanos(3_000_000_000), 0.0); // 3.0 held for 2s
                                                         // mean over 3s = (1*1 + 3*2)/3 = 7/3
        let mean = tw.mean_until(SimTime::from_nanos(3_000_000_000));
        assert!((mean - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_add_is_relative() {
        let mut tw = TimeWeighted::new(0.0, SimTime::ZERO);
        tw.add(SimTime::from_nanos(10), 2.0);
        tw.add(SimTime::from_nanos(20), -1.0);
        assert_eq!(tw.value(), 1.0);
    }

    #[test]
    fn time_weighted_no_elapsed_time_returns_value() {
        let tw = TimeWeighted::new(5.0, SimTime::ZERO);
        assert_eq!(tw.mean_until(SimTime::ZERO), 5.0);
    }
}
