//! Flight recorder: a ring buffer of the last N simulator events.
//!
//! When something goes wrong mid-simulation — a typed fault-plan error,
//! a deadlocked event loop, a panic — the stack trace says *where* but
//! not *what the simulator was doing*. The flight recorder keeps the
//! tail of the engine's event stream in a fixed-size ring (no
//! steady-state allocation once enabled) and dumps it as deterministic
//! JSON (`stash-flight-v1`): simulated timestamps and sequence numbers
//! only, no host clocks, so two identical runs dump identical bytes.
//!
//! The recorder is process-global behind a mutex, deliberately: it is
//! only enabled on the chaos/debug path (`stash chaos --flight`), the
//! engine is single-threaded, and a global survives into panic hooks
//! where thread-locals may already be gone.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use serde_json::{Map, Number, Value};

/// JSON schema tag written by [`flight_dump`].
pub const SCHEMA: &str = "stash-flight-v1";

/// Default ring capacity (events retained).
pub const DEFAULT_CAPACITY: usize = 64;

/// One recorded engine event.
#[derive(Debug, Clone)]
struct Entry {
    /// Monotonic sequence number (0 = first event ever recorded).
    seq: u64,
    /// Simulated timestamp, nanoseconds.
    t_ns: u64,
    /// Static event code (e.g. `"rank_compute"`).
    code: &'static str,
    /// First operand (rank / node / fault index — event-specific).
    a: u64,
    /// Second operand (worker index etc.; 0 when unused).
    b: u64,
}

struct Ring {
    cap: usize,
    next_seq: u64,
    buf: Vec<Entry>,
}

static FLIGHT_ON: AtomicBool = AtomicBool::new(false);
static RING: Mutex<Option<Ring>> = Mutex::new(None);

/// Turns the recorder on with a ring of `capacity` events (clamped to
/// at least 1). Allocates the ring up front; recording never allocates.
pub fn flight_enable(capacity: usize) {
    let cap = capacity.max(1);
    if let Ok(mut guard) = RING.lock() {
        *guard = Some(Ring {
            cap,
            next_seq: 0,
            buf: Vec::with_capacity(cap),
        });
        FLIGHT_ON.store(true, Ordering::Relaxed);
    }
}

/// Turns the recorder off and discards the ring.
pub fn flight_disable() {
    FLIGHT_ON.store(false, Ordering::Relaxed);
    if let Ok(mut guard) = RING.lock() {
        *guard = None;
    }
}

/// Whether the recorder is on. One relaxed load — callers use this to
/// skip operand marshalling entirely when off.
#[inline(always)]
#[must_use]
pub fn flight_enabled() -> bool {
    FLIGHT_ON.load(Ordering::Relaxed)
}

/// Records one event (no-op while disabled). `t_ns` is the simulated
/// time; `code` a static label; `a`/`b` event-specific operands.
pub fn flight_record(t_ns: u64, code: &'static str, a: u64, b: u64) {
    if !flight_enabled() {
        return;
    }
    if let Ok(mut guard) = RING.lock() {
        if let Some(ring) = guard.as_mut() {
            let seq = ring.next_seq;
            ring.next_seq += 1;
            let entry = Entry {
                seq,
                t_ns,
                code,
                a,
                b,
            };
            if ring.buf.len() < ring.cap {
                ring.buf.push(entry);
            } else {
                let idx = (seq % ring.cap as u64) as usize;
                ring.buf[idx] = entry;
            }
        }
    }
}

/// Dumps the ring as a `stash-flight-v1` JSON document (oldest event
/// first), or `None` while disabled. The dump is a pure function of the
/// recorded events — byte-identical across identical runs.
#[must_use]
pub fn flight_dump() -> Option<String> {
    let guard = RING.lock().ok()?;
    let ring = guard.as_ref()?;

    let mut events: Vec<&Entry> = ring.buf.iter().collect();
    events.sort_by_key(|e| e.seq);

    let mut root = Map::new();
    root.insert("schema".to_string(), Value::String(SCHEMA.to_string()));
    root.insert(
        "capacity".to_string(),
        Value::Number(Number::U(ring.cap as u64)),
    );
    root.insert(
        "recorded".to_string(),
        Value::Number(Number::U(ring.next_seq)),
    );
    root.insert(
        "dropped".to_string(),
        Value::Number(Number::U(ring.next_seq.saturating_sub(events.len() as u64))),
    );
    let items = events
        .into_iter()
        .map(|e| {
            let mut ev = Map::new();
            ev.insert("seq".to_string(), Value::Number(Number::U(e.seq)));
            ev.insert("t_ns".to_string(), Value::Number(Number::U(e.t_ns)));
            ev.insert("event".to_string(), Value::String(e.code.to_string()));
            ev.insert("a".to_string(), Value::Number(Number::U(e.a)));
            ev.insert("b".to_string(), Value::Number(Number::U(e.b)));
            Value::Object(ev)
        })
        .collect();
    root.insert("events".to_string(), Value::Array(items));
    serde_json::to_string_pretty(&Value::Object(root)).ok()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    // One test body: the recorder is process-global, and the default
    // test harness runs tests in parallel.
    #[test]
    fn ring_overwrites_oldest_and_dumps_deterministically() {
        assert!(!flight_enabled());
        assert!(flight_dump().is_none());
        flight_record(1, "ignored", 0, 0);

        flight_enable(4);
        for i in 0..10u64 {
            flight_record(i * 100, "rank_compute", i, 0);
        }
        let dump = flight_dump().unwrap();
        let doc: Value = serde_json::from_str(&dump).unwrap();
        assert_eq!(doc["schema"].as_str(), Some(SCHEMA));
        assert_eq!(doc["capacity"].as_u64(), Some(4));
        assert_eq!(doc["recorded"].as_u64(), Some(10));
        assert_eq!(doc["dropped"].as_u64(), Some(6));
        let events = doc["events"].as_array().unwrap();
        assert_eq!(events.len(), 4);
        // Oldest-first: seqs 6..=9.
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev["seq"].as_u64(), Some(6 + i as u64));
            assert_eq!(ev["t_ns"].as_u64(), Some((6 + i as u64) * 100));
            assert_eq!(ev["event"].as_str(), Some("rank_compute"));
        }
        assert_eq!(flight_dump().unwrap(), dump);

        flight_disable();
        assert!(flight_dump().is_none());
    }
}
