//! Iteration-resolved time series with a bounded, exact downsampler.
//!
//! Every other view in the telemetry stack collapses the time axis:
//! [`crate::snapshot::Snapshot`] and the trace rollups are epoch-level
//! aggregates, so a warm-up transient, a fault window, or a straggler
//! burst is invisible inside the totals. This module keeps the time
//! axis: the engine emits one [`SeriesSample`] per iteration of the
//! reporting rank, and a [`SeriesRecorder`] folds them into at most
//! `capacity` buckets by merging adjacent pairs whenever the store
//! fills — halving resolution instead of dropping data, so every
//! integer-ns category sum is preserved *exactly* no matter how long
//! the run is.
//!
//! Three sample shapes flow through the recorder:
//!
//! * **Per-iteration samples** (`iterations == 1`): the normal case,
//!   deltas of the reporting rank's stall accumulators since the last
//!   boundary.
//! * **Compressed fast-forward regions** (`ff_iterations > 0`): when
//!   the engine's steady-state fast-forward multiplies out the
//!   remaining iterations analytically, the whole span arrives as one
//!   explicitly-marked sample. It is stored as its own bucket (never
//!   merged into a pending partial bucket) so renderers can mark the
//!   region, and its totals keep the series reconciling exactly
//!   against the extrapolated `EpochReport`.
//! * **Corrections** (`iterations == 0`): checkpoint-replay rebilling
//!   moves already-recorded compute/data/comm time into the recovery
//!   category after the fact; the engine emits the (partly negative)
//!   delta as a zero-width sample that is absorbed into the most
//!   recent bucket. Category fields are `i64` for exactly this reason;
//!   running sums stay exact, and only renderers clamp for display.
//!
//! Fault windows are recorded as [`Annotation`]s beside the samples —
//! they are never downsampled, so preemption/straggler/degradation
//! overlays survive any amount of bucket merging.

use serde_json::{Map, Number, Value};

/// JSON schema tag written by [`IterSeries::to_json`].
pub const SCHEMA: &str = "stash-series-v1";

/// Default bucket capacity of a [`SeriesRecorder`].
pub const DEFAULT_CAPACITY: usize = 512;

/// Smallest accepted capacity (kept even so pair-merging always works).
pub const MIN_CAPACITY: usize = 8;

/// Iterations counted as the warm-up head by [`IterSeries::warmup_ratio`].
pub const WARMUP_ITERATIONS: u64 = 3;

/// A bucket's mean iteration time must exceed the steady-state mean by
/// this factor to count as a transient spike.
pub const SPIKE_RATIO: f64 = 1.5;

/// `stash diff` gate: iteration-time CoV may grow by this factor…
pub const COV_RATIO: f64 = 1.5;
/// …plus this absolute floor before it counts as a regression.
pub const COV_FLOOR: f64 = 0.02;
/// `stash diff` gate: transient-spike count may grow by this factor…
pub const SPIKE_COUNT_RATIO: f64 = 1.5;
/// …plus this absolute floor before it counts as a regression.
pub const SPIKE_COUNT_FLOOR: u64 = 2;

/// One bucket of the series: `iterations` iterations starting at
/// `start_iter`/`start_ns`, with integer-ns category sums.
///
/// Category fields are signed: replay corrections can subtract time
/// that an earlier sample already recorded (the net over the series is
/// what must reconcile, and it does — exactly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeriesSample {
    /// First iteration index covered (0-based; repeats after a
    /// checkpoint rollback, which is the honest reading of a replay).
    pub start_iter: u64,
    /// Iterations covered. `0` marks a correction sample.
    pub iterations: u64,
    /// Of `iterations`, how many were fast-forwarded analytically.
    pub ff_iterations: u64,
    /// Simulation time at the bucket start.
    pub start_ns: u64,
    /// Wall-clock (simulated) width of the bucket.
    pub wall_ns: u64,
    /// GPU compute ns in the bucket (signed; see type docs).
    pub compute_ns: i64,
    /// Data-stall ns in the bucket.
    pub data_wait_ns: i64,
    /// Communication-stall ns in the bucket.
    pub comm_wait_ns: i64,
    /// Recovery ns (checkpoint replay, rendezvous, re-formation).
    pub recovery_ns: i64,
    /// Straggler-induced ns.
    pub straggler_ns: i64,
    /// Flow-solver full recomputes during the bucket.
    pub recomputes: u64,
    /// Event-queue depth high-water during the bucket.
    pub queue_depth_hw: u64,
}

impl SeriesSample {
    /// Folds `other` (a later sample) into `self`, keeping `self`'s
    /// start coordinates. All sums are saturating-free: category ns are
    /// i64 deltas of u64 accumulators well below `i64::MAX`.
    fn absorb(&mut self, other: &SeriesSample) {
        self.iterations += other.iterations;
        self.ff_iterations += other.ff_iterations;
        self.wall_ns += other.wall_ns;
        self.compute_ns += other.compute_ns;
        self.data_wait_ns += other.data_wait_ns;
        self.comm_wait_ns += other.comm_wait_ns;
        self.recovery_ns += other.recovery_ns;
        self.straggler_ns += other.straggler_ns;
        self.recomputes += other.recomputes;
        self.queue_depth_hw = self.queue_depth_hw.max(other.queue_depth_hw);
    }

    /// Mean simulated wall time per covered iteration.
    #[must_use]
    pub fn mean_iter_ns(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.wall_ns as f64 / self.iterations as f64
        }
    }
}

/// A fault window overlaid on the series (never downsampled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Human label, e.g. `"preemption node1"`.
    pub label: String,
    /// Machine kind, e.g. `"preemption"` / `"straggler"`.
    pub kind: String,
    /// Window start (simulation ns).
    pub start_ns: u64,
    /// Window end; open windows are closed at series finish.
    pub end_ns: u64,
}

/// Streaming recorder: bounded memory, exact sums.
///
/// `capacity` buckets are preallocated up front; recording never
/// allocates beyond the annotation list (one entry per fault event).
#[derive(Debug)]
pub struct SeriesRecorder {
    samples: Vec<SeriesSample>,
    capacity: usize,
    /// Target iterations per stored bucket; doubles on every merge.
    width: u64,
    pending: Option<SeriesSample>,
    annotations: Vec<Annotation>,
    /// `(caller id, index into annotations)` for still-open windows.
    open: Vec<(u64, usize)>,
}

impl SeriesRecorder {
    /// A recorder bounded at `capacity` buckets (clamped to an even
    /// value of at least [`MIN_CAPACITY`]).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> SeriesRecorder {
        let capacity = capacity.max(MIN_CAPACITY) & !1;
        SeriesRecorder {
            samples: Vec::with_capacity(capacity),
            capacity,
            width: 1,
            pending: None,
            annotations: Vec::new(),
            open: Vec::new(),
        }
    }

    /// A recorder with the default capacity.
    #[must_use]
    pub fn new() -> SeriesRecorder {
        SeriesRecorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// Records one sample. Corrections (`iterations == 0`) are folded
    /// into the most recent bucket; fast-forward regions
    /// (`ff_iterations > 0`) become their own bucket; everything else
    /// accumulates into a pending bucket of the current width.
    pub fn record(&mut self, s: SeriesSample) {
        if s.iterations == 0 && s.ff_iterations == 0 {
            // Correction: attach to whatever bucket is most recent so
            // no zero-width bucket ever occupies capacity.
            if let Some(p) = self.pending.as_mut() {
                p.absorb(&s);
            } else if let Some(last) = self.samples.last_mut() {
                last.absorb(&s);
            } else {
                self.pending = Some(s);
            }
            return;
        }
        if s.ff_iterations > 0 {
            self.flush_pending();
            self.push_bucket(s);
            return;
        }
        match self.pending.as_mut() {
            None => self.pending = Some(s),
            Some(p) => p.absorb(&s),
        }
        if self.pending.map_or(0, |p| p.iterations) >= self.width {
            self.flush_pending();
        }
    }

    /// Opens a fault-window annotation under a caller-chosen id.
    pub fn annotate_open(&mut self, id: u64, label: &str, kind: &str, start_ns: u64) {
        self.open.push((id, self.annotations.len()));
        self.annotations.push(Annotation {
            label: label.to_string(),
            kind: kind.to_string(),
            start_ns,
            end_ns: u64::MAX,
        });
    }

    /// Closes the annotation opened under `id` (no-op if unknown).
    pub fn annotate_close(&mut self, id: u64, end_ns: u64) {
        if let Some(pos) = self.open.iter().position(|&(open_id, _)| open_id == id) {
            let (_, idx) = self.open.swap_remove(pos);
            if let Some(a) = self.annotations.get_mut(idx) {
                a.end_ns = end_ns;
            }
        }
    }

    /// Flushes the pending bucket and closes open annotations at
    /// `end_ns`, yielding the finished series.
    #[must_use]
    pub fn finish(mut self, end_ns: u64) -> IterSeries {
        self.flush_pending();
        let open = std::mem::take(&mut self.open);
        for (_, idx) in open {
            if let Some(a) = self.annotations.get_mut(idx) {
                a.end_ns = end_ns;
            }
        }
        IterSeries {
            samples: self.samples,
            annotations: self.annotations,
            end_ns,
        }
    }

    fn flush_pending(&mut self) {
        if let Some(p) = self.pending.take() {
            self.push_bucket(p);
        }
    }

    fn push_bucket(&mut self, s: SeriesSample) {
        self.samples.push(s);
        if self.samples.len() >= self.capacity {
            // Merge adjacent pairs in place: resolution halves, every
            // integer sum is untouched.
            let n = self.samples.len() / 2;
            for i in 0..n {
                let hi = self.samples[2 * i + 1];
                self.samples[2 * i].absorb(&hi);
                self.samples[i] = self.samples[2 * i];
            }
            // An odd trailing bucket (possible only transiently) slides down.
            if self.samples.len() % 2 == 1 {
                self.samples[n] = self.samples[self.samples.len() - 1];
                self.samples.truncate(n + 1);
            } else {
                self.samples.truncate(n);
            }
            self.width *= 2;
        }
    }
}

impl Default for SeriesRecorder {
    fn default() -> Self {
        SeriesRecorder::new()
    }
}

/// Exact integer totals over a series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeriesTotals {
    /// Iterations covered (including fast-forwarded ones).
    pub iterations: u64,
    /// Fast-forwarded iterations (compressed regions).
    pub ff_iterations: u64,
    /// Total simulated wall ns.
    pub wall_ns: u64,
    /// Net compute ns.
    pub compute_ns: i64,
    /// Net data-stall ns.
    pub data_wait_ns: i64,
    /// Net communication-stall ns.
    pub comm_wait_ns: i64,
    /// Net recovery ns.
    pub recovery_ns: i64,
    /// Net straggler ns.
    pub straggler_ns: i64,
    /// Solver full recomputes.
    pub recomputes: u64,
}

/// A finished iteration series: bounded samples plus fault overlays.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IterSeries {
    /// Downsampled buckets in time order.
    pub samples: Vec<SeriesSample>,
    /// Fault windows (closed; open ones were sealed at finish).
    pub annotations: Vec<Annotation>,
    /// Simulation time when recording stopped.
    pub end_ns: u64,
}

impl IterSeries {
    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact integer totals (the reconciliation side of the oracle).
    #[must_use]
    pub fn totals(&self) -> SeriesTotals {
        let mut t = SeriesTotals::default();
        for s in &self.samples {
            t.iterations += s.iterations;
            t.ff_iterations += s.ff_iterations;
            t.wall_ns += s.wall_ns;
            t.compute_ns += s.compute_ns;
            t.data_wait_ns += s.data_wait_ns;
            t.comm_wait_ns += s.comm_wait_ns;
            t.recovery_ns += s.recovery_ns;
            t.straggler_ns += s.straggler_ns;
            t.recomputes += s.recomputes;
        }
        t
    }

    /// Weighted coefficient of variation of per-iteration wall time
    /// across buckets (weights = iterations per bucket). `0.0` for
    /// fewer than two covered buckets.
    #[must_use]
    pub fn iteration_cov(&self) -> f64 {
        let buckets: Vec<&SeriesSample> =
            self.samples.iter().filter(|s| s.iterations > 0).collect();
        if buckets.len() < 2 {
            return 0.0;
        }
        let total_w: f64 = buckets.iter().map(|s| s.iterations as f64).sum();
        let total_wall: f64 = buckets.iter().map(|s| s.wall_ns as f64).sum();
        if total_w <= 0.0 || total_wall <= 0.0 {
            return 0.0;
        }
        let mean = total_wall / total_w;
        let var = buckets
            .iter()
            .map(|s| {
                let d = s.mean_iter_ns() - mean;
                s.iterations as f64 * d * d
            })
            .sum::<f64>()
            / total_w;
        var.sqrt() / mean
    }

    /// Mean iteration time over buckets after the warm-up head
    /// ([`WARMUP_ITERATIONS`]); falls back to the overall mean when the
    /// whole series fits in the head.
    #[must_use]
    pub fn steady_mean_iter_ns(&self) -> f64 {
        let mut skipped = 0u64;
        let mut wall = 0.0f64;
        let mut iters = 0.0f64;
        for s in &self.samples {
            if s.iterations == 0 {
                continue;
            }
            if skipped < WARMUP_ITERATIONS {
                skipped += s.iterations;
                continue;
            }
            wall += s.wall_ns as f64;
            iters += s.iterations as f64;
        }
        if iters > 0.0 {
            wall / iters
        } else {
            let t = self.totals();
            if t.iterations == 0 {
                0.0
            } else {
                t.wall_ns as f64 / t.iterations as f64
            }
        }
    }

    /// Warm-up transient: mean iteration time of the first
    /// [`WARMUP_ITERATIONS`] iterations divided by the steady-state
    /// mean. `1.0` when there is no detectable head or steady tail.
    #[must_use]
    pub fn warmup_ratio(&self) -> f64 {
        let steady = self.steady_mean_iter_ns();
        if steady <= 0.0 {
            return 1.0;
        }
        let mut head_wall = 0.0f64;
        let mut head_iters = 0.0f64;
        for s in &self.samples {
            if s.iterations == 0 || head_iters >= WARMUP_ITERATIONS as f64 {
                continue;
            }
            head_wall += s.wall_ns as f64;
            head_iters += s.iterations as f64;
        }
        if head_iters <= 0.0 {
            return 1.0;
        }
        (head_wall / head_iters) / steady
    }

    /// Buckets past the warm-up head whose mean iteration time exceeds
    /// [`SPIKE_RATIO`] × the steady-state mean.
    #[must_use]
    pub fn spike_count(&self) -> u64 {
        let steady = self.steady_mean_iter_ns();
        if steady <= 0.0 {
            return 0;
        }
        let mut skipped = 0u64;
        let mut spikes = 0u64;
        for s in &self.samples {
            if s.iterations == 0 {
                continue;
            }
            if skipped < WARMUP_ITERATIONS {
                skipped += s.iterations;
                continue;
            }
            if s.mean_iter_ns() > SPIKE_RATIO * steady {
                spikes += 1;
            }
        }
        spikes
    }

    /// Serializes the `stash-series-v1` document. Insertion order is
    /// fixed, so identical series + meta produce byte-identical JSON.
    #[must_use]
    pub fn to_json(&self, meta: &SeriesMeta) -> Value {
        let t = self.totals();
        let mut totals = Map::new();
        totals.insert("iterations".to_string(), num_u(t.iterations));
        totals.insert("ff_iterations".to_string(), num_u(t.ff_iterations));
        totals.insert("wall_ns".to_string(), num_u(t.wall_ns));
        totals.insert("compute_ns".to_string(), num_i(t.compute_ns));
        totals.insert("data_wait_ns".to_string(), num_i(t.data_wait_ns));
        totals.insert("comm_wait_ns".to_string(), num_i(t.comm_wait_ns));
        totals.insert("recovery_ns".to_string(), num_i(t.recovery_ns));
        totals.insert("straggler_ns".to_string(), num_i(t.straggler_ns));
        totals.insert("recomputes".to_string(), num_u(t.recomputes));

        let mut stats = Map::new();
        stats.insert(
            "iteration_cov".to_string(),
            Value::Number(Number::F(self.iteration_cov())),
        );
        stats.insert(
            "warmup_ratio".to_string(),
            Value::Number(Number::F(self.warmup_ratio())),
        );
        stats.insert("spike_count".to_string(), num_u(self.spike_count()));

        let samples = self
            .samples
            .iter()
            .map(|s| {
                Value::Array(vec![
                    num_u(s.start_iter),
                    num_u(s.iterations),
                    num_u(s.ff_iterations),
                    num_u(s.start_ns),
                    num_u(s.wall_ns),
                    num_i(s.compute_ns),
                    num_i(s.data_wait_ns),
                    num_i(s.comm_wait_ns),
                    num_i(s.recovery_ns),
                    num_i(s.straggler_ns),
                    num_u(s.recomputes),
                    num_u(s.queue_depth_hw),
                ])
            })
            .collect();

        let annotations = self
            .annotations
            .iter()
            .map(|a| {
                let mut m = Map::new();
                m.insert("label".to_string(), Value::String(a.label.clone()));
                m.insert("kind".to_string(), Value::String(a.kind.clone()));
                m.insert("start_ns".to_string(), num_u(a.start_ns));
                m.insert("end_ns".to_string(), num_u(a.end_ns));
                Value::Object(m)
            })
            .collect();

        let mut root = Map::new();
        root.insert("schema".to_string(), Value::String(SCHEMA.to_string()));
        root.insert("cluster".to_string(), Value::String(meta.cluster.clone()));
        root.insert("model".to_string(), Value::String(meta.model.clone()));
        root.insert("world".to_string(), num_u(meta.world));
        root.insert("per_gpu_batch".to_string(), num_u(meta.per_gpu_batch));
        root.insert("iterations".to_string(), num_u(meta.iterations));
        root.insert(
            "simulated_iterations".to_string(),
            num_u(meta.simulated_iterations),
        );
        root.insert("end_ns".to_string(), num_u(self.end_ns));
        root.insert("totals".to_string(), Value::Object(totals));
        root.insert("stats".to_string(), Value::Object(stats));
        root.insert("samples".to_string(), Value::Array(samples));
        root.insert("annotations".to_string(), Value::Array(annotations));
        Value::Object(root)
    }

    /// CSV export: a header plus one row per bucket.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "start_iter,iterations,ff_iterations,start_ns,wall_ns,compute_ns,\
             data_wait_ns,comm_wait_ns,recovery_ns,straggler_ns,recomputes,queue_depth_hw\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{}\n",
                s.start_iter,
                s.iterations,
                s.ff_iterations,
                s.start_ns,
                s.wall_ns,
                s.compute_ns,
                s.data_wait_ns,
                s.comm_wait_ns,
                s.recovery_ns,
                s.straggler_ns,
                s.recomputes,
                s.queue_depth_hw,
            ));
        }
        out
    }

    /// Parses a `stash-series-v1` document back into `(meta, series)`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or malformed field.
    pub fn from_json(doc: &Value) -> Result<(SeriesMeta, IterSeries), String> {
        if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
            return Err(format!("not a {SCHEMA} document"));
        }
        let meta = SeriesMeta {
            cluster: str_field(doc, "cluster")?,
            model: str_field(doc, "model")?,
            world: u64_field(doc, "world")?,
            per_gpu_batch: u64_field(doc, "per_gpu_batch")?,
            iterations: u64_field(doc, "iterations")?,
            simulated_iterations: u64_field(doc, "simulated_iterations")?,
        };
        let end_ns = u64_field(doc, "end_ns")?;
        let rows = doc
            .get("samples")
            .and_then(Value::as_array)
            .ok_or("missing samples array")?;
        let mut samples = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let cells = row
                .as_array()
                .filter(|c| c.len() == 12)
                .ok_or_else(|| format!("sample {i}: expected 12 cells"))?;
            let u = |j: usize| -> Result<u64, String> {
                cells[j]
                    .as_u64()
                    .ok_or_else(|| format!("sample {i} cell {j}: expected u64"))
            };
            let sgn = |j: usize| -> Result<i64, String> {
                cells[j]
                    .as_i64()
                    .ok_or_else(|| format!("sample {i} cell {j}: expected i64"))
            };
            samples.push(SeriesSample {
                start_iter: u(0)?,
                iterations: u(1)?,
                ff_iterations: u(2)?,
                start_ns: u(3)?,
                wall_ns: u(4)?,
                compute_ns: sgn(5)?,
                data_wait_ns: sgn(6)?,
                comm_wait_ns: sgn(7)?,
                recovery_ns: sgn(8)?,
                straggler_ns: sgn(9)?,
                recomputes: u(10)?,
                queue_depth_hw: u(11)?,
            });
        }
        let manns = doc
            .get("annotations")
            .and_then(Value::as_array)
            .ok_or("missing annotations array")?;
        let mut annotations = Vec::with_capacity(manns.len());
        for (i, a) in manns.iter().enumerate() {
            annotations.push(Annotation {
                label: str_field(a, "label").map_err(|e| format!("annotation {i}: {e}"))?,
                kind: str_field(a, "kind").map_err(|e| format!("annotation {i}: {e}"))?,
                start_ns: u64_field(a, "start_ns").map_err(|e| format!("annotation {i}: {e}"))?,
                end_ns: u64_field(a, "end_ns").map_err(|e| format!("annotation {i}: {e}"))?,
            });
        }
        Ok((
            meta,
            IterSeries {
                samples,
                annotations,
                end_ns,
            },
        ))
    }
}

/// Subject metadata carried by a series document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesMeta {
    /// Cluster spec name, e.g. `"p3.8xlarge*2"`.
    pub cluster: String,
    /// Model name, e.g. `"resnet50"`.
    pub model: String,
    /// World size (total GPUs).
    pub world: u64,
    /// Per-GPU batch size.
    pub per_gpu_batch: u64,
    /// Full-epoch iterations the report extrapolates to.
    pub iterations: u64,
    /// Iterations actually simulated (series coverage).
    pub simulated_iterations: u64,
}

/// `true` when `doc` is a `stash-series-v1` document.
#[must_use]
pub fn is_series_doc(doc: &Value) -> bool {
    doc.get("schema").and_then(Value::as_str) == Some(SCHEMA)
}

/// Outcome of gating one series document against a baseline.
#[derive(Debug, Clone, Default)]
pub struct SeriesDiff {
    /// Failed dynamics gates (non-empty ⇒ CI should fail).
    pub regressions: Vec<String>,
    /// Informational lines (values compared, subject mismatches).
    pub notes: Vec<String>,
}

impl SeriesDiff {
    /// `true` when every gate passed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Gates `current` against `baseline` on iteration-time dynamics:
/// CoV may grow to `baseline × `[`COV_RATIO`]` + `[`COV_FLOOR`], the
/// transient-spike count to `baseline × `[`SPIKE_COUNT_RATIO`]` +
/// `[`SPIKE_COUNT_FLOOR`]. Totals are deliberately not re-gated here —
/// `stash diff` on stall reports already owns them.
///
/// # Errors
///
/// Returns a message when either document is not `stash-series-v1`.
pub fn diff_docs(baseline: &Value, current: &Value) -> Result<SeriesDiff, String> {
    let (bm, bs) = IterSeries::from_json(baseline).map_err(|e| format!("baseline: {e}"))?;
    let (cm, cs) = IterSeries::from_json(current).map_err(|e| format!("current: {e}"))?;
    let mut out = SeriesDiff::default();
    if bm.cluster != cm.cluster || bm.model != cm.model {
        out.notes.push(format!(
            "subject changed: {} {} -> {} {}",
            bm.cluster, bm.model, cm.cluster, cm.model
        ));
    }

    let (b_cov, c_cov) = (bs.iteration_cov(), cs.iteration_cov());
    let cov_limit = b_cov * COV_RATIO + COV_FLOOR;
    if c_cov > cov_limit {
        out.regressions.push(format!(
            "iteration-time CoV regressed: {b_cov:.4} -> {c_cov:.4} (limit {cov_limit:.4})"
        ));
    } else {
        out.notes
            .push(format!("iteration-time CoV: {b_cov:.4} -> {c_cov:.4} (ok)"));
    }

    let (b_sp, c_sp) = (bs.spike_count(), cs.spike_count());
    let spike_limit = (b_sp as f64 * SPIKE_COUNT_RATIO) as u64 + SPIKE_COUNT_FLOOR;
    if c_sp > spike_limit {
        out.regressions.push(format!(
            "transient spikes regressed: {b_sp} -> {c_sp} (limit {spike_limit})"
        ));
    } else {
        out.notes
            .push(format!("transient spikes: {b_sp} -> {c_sp} (ok)"));
    }
    Ok(out)
}

fn num_u(v: u64) -> Value {
    Value::Number(Number::U(v))
}

fn num_i(v: i64) -> Value {
    Value::Number(Number::I(v))
}

fn str_field(doc: &Value, name: &str) -> Result<String, String> {
    doc.get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing field {name}"))
}

fn u64_field(doc: &Value, name: &str) -> Result<u64, String> {
    doc.get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing field {name}"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn iter_sample(i: u64, start_ns: u64, wall: u64) -> SeriesSample {
        SeriesSample {
            start_iter: i,
            iterations: 1,
            start_ns,
            wall_ns: wall,
            compute_ns: wall as i64 / 2,
            data_wait_ns: wall as i64 / 4,
            comm_wait_ns: wall as i64 - wall as i64 / 2 - wall as i64 / 4,
            recomputes: 3,
            queue_depth_hw: 5 + i % 7,
            ..SeriesSample::default()
        }
    }

    fn meta() -> SeriesMeta {
        SeriesMeta {
            cluster: "p3.8xlarge".to_string(),
            model: "resnet18".to_string(),
            world: 4,
            per_gpu_batch: 32,
            iterations: 100,
            simulated_iterations: 100,
        }
    }

    #[test]
    fn capacity_is_bounded_and_sums_exact() {
        let mut r = SeriesRecorder::with_capacity(8);
        let n = 1000u64;
        for i in 0..n {
            r.record(iter_sample(i, i * 100, 100));
        }
        let s = r.finish(n * 100);
        assert!(s.samples.len() <= 8, "len={}", s.samples.len());
        let t = s.totals();
        assert_eq!(t.iterations, n);
        assert_eq!(t.wall_ns, n * 100);
        assert_eq!(
            t.compute_ns + t.data_wait_ns + t.comm_wait_ns,
            (n * 100) as i64
        );
        assert_eq!(t.recomputes, 3 * n);
        // Timestamps stay monotone through merging.
        for w in s.samples.windows(2) {
            assert!(w[0].start_ns < w[1].start_ns);
        }
    }

    #[test]
    fn corrections_fold_without_new_buckets() {
        let mut r = SeriesRecorder::with_capacity(8);
        r.record(iter_sample(0, 0, 100));
        // Replay rebilling: move 30 ns of compute into recovery.
        r.record(SeriesSample {
            start_iter: 1,
            compute_ns: -30,
            recovery_ns: 30,
            ..SeriesSample::default()
        });
        let s = r.finish(100);
        assert_eq!(s.samples.len(), 1);
        let t = s.totals();
        assert_eq!(t.compute_ns, 20);
        assert_eq!(t.recovery_ns, 30);
        assert_eq!(t.wall_ns, 100);
    }

    #[test]
    fn ff_regions_stay_marked() {
        let mut r = SeriesRecorder::with_capacity(8);
        for i in 0..3 {
            r.record(iter_sample(i, i * 100, 100));
        }
        r.record(SeriesSample {
            start_iter: 3,
            iterations: 500,
            ff_iterations: 500,
            start_ns: 300,
            wall_ns: 50_000,
            compute_ns: 25_000,
            data_wait_ns: 12_500,
            comm_wait_ns: 12_500,
            ..SeriesSample::default()
        });
        let s = r.finish(50_300);
        let t = s.totals();
        assert_eq!(t.iterations, 503);
        assert_eq!(t.ff_iterations, 500);
        assert!(s.samples.iter().any(|x| x.ff_iterations == 500));
    }

    #[test]
    fn annotations_survive_and_open_windows_seal() {
        let mut r = SeriesRecorder::with_capacity(8);
        r.record(iter_sample(0, 0, 100));
        r.annotate_open(7, "straggler node0", "straggler", 40);
        r.annotate_close(7, 90);
        r.annotate_open(9, "preemption node1", "preemption", 95);
        let s = r.finish(100);
        assert_eq!(s.annotations.len(), 2);
        assert_eq!(s.annotations[0].end_ns, 90);
        assert_eq!(s.annotations[1].end_ns, 100);
    }

    #[test]
    fn json_round_trips_and_is_deterministic() {
        let mut r = SeriesRecorder::with_capacity(16);
        for i in 0..40 {
            r.record(iter_sample(i, i * 100, 100 + (i % 5) * 7));
        }
        r.annotate_open(1, "link slow", "link_degradation", 10);
        r.annotate_close(1, 900);
        let s = r.finish(40 * 110);
        let a = serde_json::to_string_pretty(&s.to_json(&meta())).unwrap();
        let b = serde_json::to_string_pretty(&s.to_json(&meta())).unwrap();
        assert_eq!(a, b);
        let doc: Value = serde_json::from_str(&a).unwrap();
        assert!(is_series_doc(&doc));
        let (m2, s2) = IterSeries::from_json(&doc).unwrap();
        assert_eq!(m2, meta());
        assert_eq!(s2, s);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut r = SeriesRecorder::with_capacity(8);
        r.record(iter_sample(0, 0, 100));
        let s = r.finish(100);
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("start_iter,iterations"));
        assert_eq!(lines.count(), 1);
    }

    #[test]
    fn stats_detect_warmup_and_spikes() {
        let mut r = SeriesRecorder::with_capacity(64);
        // Three slow warm-up iterations, then steady 100 ns, one spike.
        for i in 0..3 {
            r.record(iter_sample(i, i * 300, 300));
        }
        for i in 3..30 {
            let wall = if i == 20 { 400 } else { 100 };
            r.record(iter_sample(i, 900 + (i - 3) * 100, wall));
        }
        let s = r.finish(4000);
        assert!(s.warmup_ratio() > 2.0, "warmup {}", s.warmup_ratio());
        assert_eq!(s.spike_count(), 1);
        assert!(s.iteration_cov() > 0.0);
    }

    #[test]
    fn diff_gates_cov_and_spikes() {
        let mk = |spike_every: u64| {
            let mut r = SeriesRecorder::with_capacity(64);
            for i in 0..40 {
                let wall = if spike_every > 0 && i % spike_every == 5 {
                    1000
                } else {
                    100
                };
                r.record(iter_sample(i, i * 100, wall));
            }
            r.finish(5000).to_json(&meta())
        };
        let calm = mk(0);
        let spiky = mk(7);
        let d = diff_docs(&calm, &calm).unwrap();
        assert!(d.is_clean(), "{:?}", d.regressions);
        let d = diff_docs(&calm, &spiky).unwrap();
        assert!(!d.is_clean());
        assert!(diff_docs(&calm, &Value::Null).is_err());
    }
}
