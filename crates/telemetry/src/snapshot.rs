//! Deterministic point-in-time captures of the metric registry.
//!
//! A [`Snapshot`] copies every metric in [`crate::metrics`] schema
//! order, so two snapshots of identical recorded state serialize to
//! byte-identical JSON. Snapshots subtract ([`Snapshot::since`]) to
//! scope counters/histograms to one profile run, and merge
//! ([`Snapshot::merge`]) to roll per-instance runs into a sweep-wide
//! fleet view (counters and buckets sum; high-water gauges take the
//! max).

use serde_json::{Map, Number, Value};

use crate::metrics;
use crate::registry::{bucket_quantile, BUCKETS};

/// JSON schema tag written by [`Snapshot::to_json`].
pub const SCHEMA: &str = "stash-telemetry-v1";

/// Copied-out histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts (see [`crate::registry::bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl HistSnapshot {
    /// An empty histogram snapshot.
    #[must_use]
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Quantile estimate (upper bound of the covering bucket).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        bucket_quantile(&self.buckets, self.count, q)
    }

    /// The part of `self` recorded after `base` (saturating per cell).
    #[must_use]
    pub fn since(&self, base: &HistSnapshot) -> HistSnapshot {
        let mut out = HistSnapshot {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            buckets: [0; BUCKETS],
        };
        for i in 0..BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(base.buckets[i]);
        }
        out
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        for i in 0..BUCKETS {
            self.buckets[i] = self.buckets[i].saturating_add(other.buckets[i]);
        }
    }
}

/// A deterministic copy of every registry metric, in schema order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` for every counter in schema order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, high-water)` for every gauge in schema order.
    pub gauges: Vec<(&'static str, u64)>,
    /// `(name, state)` for every histogram in schema order.
    pub histograms: Vec<(&'static str, HistSnapshot)>,
}

impl Snapshot {
    /// Captures the current registry state.
    #[must_use]
    pub fn take() -> Snapshot {
        Snapshot {
            counters: metrics::COUNTERS
                .iter()
                .map(|c| (c.name, c.counter.get()))
                .collect(),
            gauges: metrics::GAUGES
                .iter()
                .map(|g| (g.name, g.gauge.get()))
                .collect(),
            histograms: metrics::HISTOGRAMS
                .iter()
                .map(|h| {
                    (
                        h.name,
                        HistSnapshot {
                            count: h.histogram.count(),
                            sum: h.histogram.sum(),
                            buckets: h.histogram.buckets(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// An all-zero snapshot with the full schema (merge identity).
    #[must_use]
    pub fn zero() -> Snapshot {
        Snapshot {
            counters: metrics::COUNTERS.iter().map(|c| (c.name, 0)).collect(),
            gauges: metrics::GAUGES.iter().map(|g| (g.name, 0)).collect(),
            histograms: metrics::HISTOGRAMS
                .iter()
                .map(|h| (h.name, HistSnapshot::empty()))
                .collect(),
        }
    }

    /// The activity between `base` and `self`: counters and histograms
    /// subtract; gauges keep `self`'s high-water mark (a maximum cannot
    /// be un-observed).
    #[must_use]
    pub fn since(&self, base: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .zip(base.counters.iter())
                .map(|(&(n, v), &(_, b))| (n, v.saturating_sub(b)))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .zip(base.histograms.iter())
                .map(|((n, h), (_, b))| (*n, h.since(b)))
                .collect(),
        }
    }

    /// Accumulates `other`: counters/buckets sum, gauges take the max.
    pub fn merge(&mut self, other: &Snapshot) {
        for ((_, v), &(_, o)) in self.counters.iter_mut().zip(other.counters.iter()) {
            *v = v.saturating_add(o);
        }
        for ((_, v), &(_, o)) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *v = (*v).max(o);
        }
        for ((_, h), (_, o)) in self.histograms.iter_mut().zip(other.histograms.iter()) {
            h.merge(o);
        }
    }

    /// Counter value by name (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Gauge value by name (0 when absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Histogram state by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Serializes as the `stash-telemetry-v1` document. `scope` is
    /// `"instance"` or `"sweep"`; `subject` names what was profiled
    /// (e.g. `"p3.2xlarge resnet50"`). Insertion order is schema order,
    /// so the output is byte-deterministic for identical state.
    #[must_use]
    pub fn to_json(&self, scope: &str, subject: &str) -> Value {
        let mut counters = Map::new();
        for &(name, v) in &self.counters {
            counters.insert(name.to_string(), Value::Number(Number::U(v)));
        }
        let mut gauges = Map::new();
        for &(name, v) in &self.gauges {
            gauges.insert(name.to_string(), Value::Number(Number::U(v)));
        }
        let mut histograms = Map::new();
        for (name, h) in &self.histograms {
            let mut doc = Map::new();
            doc.insert("count".to_string(), Value::Number(Number::U(h.count)));
            doc.insert("sum".to_string(), Value::Number(Number::U(h.sum)));
            doc.insert(
                "p50".to_string(),
                Value::Number(Number::U(h.quantile(0.50))),
            );
            doc.insert(
                "p90".to_string(),
                Value::Number(Number::U(h.quantile(0.90))),
            );
            doc.insert(
                "p99".to_string(),
                Value::Number(Number::U(h.quantile(0.99))),
            );
            // Sparse buckets: `[index, count]` pairs for non-zero cells
            // keeps the dump compact without losing exactness.
            let cells = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    Value::Array(vec![
                        Value::Number(Number::U(i as u64)),
                        Value::Number(Number::U(c)),
                    ])
                })
                .collect();
            doc.insert("buckets".to_string(), Value::Array(cells));
            histograms.insert(name.to_string(), Value::Object(doc));
        }

        let mut root = Map::new();
        root.insert("schema".to_string(), Value::String(SCHEMA.to_string()));
        root.insert("scope".to_string(), Value::String(scope.to_string()));
        root.insert("subject".to_string(), Value::String(subject.to_string()));
        root.insert("counters".to_string(), Value::Object(counters));
        root.insert("gauges".to_string(), Value::Object(gauges));
        root.insert("histograms".to_string(), Value::Object(histograms));
        Value::Object(root)
    }

    /// Renders the snapshot in Prometheus text exposition format.
    #[must_use]
    pub fn render_prom(&self) -> String {
        crate::prom::render_snapshot(self)
    }

    /// Renders the snapshot as CSV (`metric,kind,value`), one row per
    /// counter and gauge plus count/sum/p50/p90/p99 rows per histogram.
    /// Rows follow schema order, so the output is byte-deterministic for
    /// identical state — the spreadsheet-friendly sibling of
    /// [`Snapshot::to_json`].
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("metric,kind,value\n");
        for &(name, v) in &self.counters {
            out.push_str(&format!("{name},counter,{v}\n"));
        }
        for &(name, v) in &self.gauges {
            out.push_str(&format!("{name},gauge,{v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("{name}_count,histogram,{}\n", h.count));
            out.push_str(&format!("{name}_sum,histogram,{}\n", h.sum));
            out.push_str(&format!("{name}_p50,histogram,{}\n", h.quantile(0.50)));
            out.push_str(&format!("{name}_p90,histogram,{}\n", h.quantile(0.90)));
            out.push_str(&format!("{name}_p99,histogram,{}\n", h.quantile(0.99)));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::zero();
        s.counters[0].1 = 10;
        s.gauges[0].1 = 7;
        let h = &mut s.histograms[0].1;
        h.count = 3;
        h.sum = 300;
        h.buckets[7] = 3;
        s
    }

    #[test]
    fn csv_is_deterministic_and_follows_schema_order() {
        let s = sample();
        let csv = s.to_csv();
        assert!(csv.starts_with("metric,kind,value\n"));
        assert!(csv.contains(&format!("{},counter,10\n", s.counters[0].0)));
        assert!(csv.contains(&format!("{},gauge,7\n", s.gauges[0].0)));
        assert!(csv.contains(&format!("{}_count,histogram,3\n", s.histograms[0].0)));
        assert_eq!(csv, sample().to_csv());
    }

    #[test]
    fn since_subtracts_counters_and_keeps_gauges() {
        let base = sample();
        let mut now = sample();
        now.counters[0].1 = 25;
        now.gauges[0].1 = 9;
        now.histograms[0].1.count = 5;
        now.histograms[0].1.buckets[7] = 5;
        now.histograms[0].1.sum = 500;
        let d = now.since(&base);
        assert_eq!(d.counters[0].1, 15);
        assert_eq!(d.gauges[0].1, 9);
        assert_eq!(d.histograms[0].1.count, 2);
        assert_eq!(d.histograms[0].1.buckets[7], 2);
    }

    #[test]
    fn merge_sums_counts_and_maxes_gauges() {
        let mut a = sample();
        let mut b = sample();
        b.gauges[0].1 = 3;
        a.merge(&b);
        assert_eq!(a.counters[0].1, 20);
        assert_eq!(a.gauges[0].1, 7);
        assert_eq!(a.histograms[0].1.count, 6);
        assert_eq!(a.histograms[0].1.sum, 600);
    }

    #[test]
    fn json_dump_is_schema_tagged_and_deterministic() {
        let s = sample();
        let a = serde_json::to_string_pretty(&s.to_json("instance", "x y")).unwrap();
        let b = serde_json::to_string_pretty(&s.to_json("instance", "x y")).unwrap();
        assert_eq!(a, b);
        let doc: Value = serde_json::from_str(&a).unwrap();
        assert_eq!(doc["schema"].as_str(), Some(SCHEMA));
        assert_eq!(doc["scope"].as_str(), Some("instance"));
        let hist = &doc["histograms"][crate::metrics::HISTOGRAMS[0].name];
        assert_eq!(hist["count"].as_u64(), Some(3));
        assert_eq!(hist["buckets"][0][0].as_u64(), Some(7));
        assert_eq!(hist["buckets"][0][1].as_u64(), Some(3));
    }

    #[test]
    fn lookups_by_name() {
        let s = sample();
        assert_eq!(s.counter(crate::metrics::COUNTERS[0].name), 10);
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.gauge(crate::metrics::GAUGES[0].name), 7);
        assert!(s.histogram(crate::metrics::HISTOGRAMS[0].name).is_some());
        assert!(s.histogram("nope").is_none());
    }
}
