//! Metric primitives: counters, high-water gauges, log2 histograms.
//!
//! All three are plain `AtomicU64` aggregates with `const fn new`, so
//! they can live in statics and record from any thread without locks or
//! allocation. Every *gated* recording method ([`Counter::inc`],
//! [`Gauge::record_max`], [`Histogram::record`]) first checks the
//! process-wide [`crate::enabled`] switch; the `observe_*` variants
//! bypass the switch for local (non-registry) instances in tests.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX` (`2^0..2^63`).
pub const BUCKETS: usize = 65;

/// The bucket a value lands in: `0` for zero, else `64 - leading_zeros`
/// — bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`.
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`0`, then `2^i - 1`).
#[inline]
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    val: AtomicU64,
}

impl Counter {
    /// A zeroed counter, usable in statics.
    #[must_use]
    pub const fn new() -> Counter {
        Counter {
            val: AtomicU64::new(0),
        }
    }

    /// Adds one, if telemetry is enabled.
    #[inline(always)]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, if telemetry is enabled.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.val.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.val.load(Ordering::Relaxed)
    }

    /// Resets to zero (snapshot plumbing, not a hot-path operation).
    pub fn reset(&self) {
        self.val.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// High-water gauge: retains the maximum value ever recorded.
#[derive(Debug)]
pub struct Gauge {
    val: AtomicU64,
}

impl Gauge {
    /// A zeroed gauge, usable in statics.
    #[must_use]
    pub const fn new() -> Gauge {
        Gauge {
            val: AtomicU64::new(0),
        }
    }

    /// Raises the high-water mark to `v` if larger, if telemetry is
    /// enabled.
    #[inline(always)]
    pub fn record_max(&self, v: u64) {
        if crate::enabled() {
            self.val.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current high-water mark.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.val.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.val.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

/// Fixed log2-bucket histogram over `u64` values (integer nanoseconds
/// on every current use).
///
/// 65 buckets cover the full `u64` range exactly: bucket 0 holds zeros,
/// bucket `i` holds `[2^(i-1), 2^i - 1]`. Recording is three relaxed
/// fetch-adds (bucket, count, sum); `count` and `sum` are maintained
/// redundantly so percentile math never re-walks buckets and the
/// proptest invariant `sum(buckets) == count` stays checkable.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// A zeroed histogram, usable in statics.
    #[must_use]
    pub const fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Records `v`, if telemetry is enabled.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.observe(v);
        }
    }

    /// Records `v` unconditionally (for local histograms in tests and
    /// tools that own their own lifecycle).
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow, like Prometheus).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the bucket counts out.
    #[must_use]
    pub fn buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Resets every cell to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Quantile estimate from bucket counts: the upper bound of the bucket
/// where the cumulative count first reaches `ceil(q * count)`. Returns 0
/// for an empty histogram. `q` is clamped to `[0, 1]`.
#[must_use]
pub fn bucket_quantile(buckets: &[u64; BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * count as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (i, &b) in buckets.iter().enumerate() {
        cum = cum.saturating_add(b);
        if cum >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(BUCKETS - 1)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..BUCKETS {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i}");
            if i < 64 {
                assert_eq!(bucket_index(ub + 1), i + 1);
            }
        }
    }

    #[test]
    fn histogram_observe_tracks_count_and_sum() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let buckets = h.buckets();
        assert_eq!(buckets.iter().sum::<u64>(), 6);
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[64], 1);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = Histogram::new();
        // 90 fast observations (bucket of 100 = 7), 10 slow (bucket of
        // 100_000 = 17): p50 lands in the fast bucket, p99 in the slow.
        for _ in 0..90 {
            h.observe(100);
        }
        for _ in 0..10 {
            h.observe(100_000);
        }
        let b = h.buckets();
        assert_eq!(bucket_quantile(&b, h.count(), 0.50), 127);
        assert_eq!(bucket_quantile(&b, h.count(), 0.99), 131_071);
        assert_eq!(bucket_quantile(&b, h.count(), 0.0), 127);
        assert_eq!(bucket_quantile(&[0; BUCKETS], 0, 0.99), 0);
    }
}
