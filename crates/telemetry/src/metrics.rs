//! The fixed metric schema.
//!
//! Every simulator self-metric is a process-wide static declared here,
//! grouped into three declaration-ordered arrays ([`COUNTERS`],
//! [`GAUGES`], [`HISTOGRAMS`]). A fixed schema instead of dynamic
//! registration buys three properties at once: recording sites pay no
//! lookup, snapshots are deterministic (array order *is* exposition
//! order), and the registry itself never allocates.
//!
//! Naming scheme (documented in DESIGN.md): `stash_<layer>_<what>_<unit
//! or _total>` where `<layer>` is `sim` (simkit/flowsim/ddl machinery),
//! `cache` (profiler measurement cache), `profile` (per-step profiling),
//! or `data` (input pipeline). Histograms record integer nanoseconds and
//! carry an `_ns` suffix.

use crate::registry::{Counter, Gauge, Histogram};

// --- simkit::queue ------------------------------------------------------

/// Events scheduled into the indexed event queue.
pub static QUEUE_PUSHED: Counter = Counter::new();
/// Events delivered (popped live) from the event queue.
pub static QUEUE_POPPED: Counter = Counter::new();
/// Events cancelled while still pending.
pub static QUEUE_CANCELLED: Counter = Counter::new();
/// High-water mark of live (scheduled, not yet delivered or cancelled)
/// events.
pub static QUEUE_DEPTH_HIGH_WATER: Gauge = Gauge::new();

// --- flowsim::net / fairness -------------------------------------------

/// Full max-min solver recomputations.
pub static SOLVER_FULL_RECOMPUTES: Counter = Counter::new();
/// Flow events absorbed by the single-flow shortcut (no solve).
pub static SOLVER_SHORTCUT_EVENTS: Counter = Counter::new();
/// Water-filling freeze rounds summed over all solves.
pub static SOLVER_ROUNDS: Counter = Counter::new();
/// Host wall-clock latency of each full recompute, in nanoseconds.
pub static SOLVER_RECOMPUTE_LATENCY_NS: Histogram = Histogram::new();
/// High-water mark of concurrently active flows.
pub static FLOWS_ACTIVE_HIGH_WATER: Gauge = Gauge::new();
/// High-water mark of allocated flow slab slots (occupancy ceiling).
pub static FLOW_SLOTS_HIGH_WATER: Gauge = Gauge::new();

// --- ddl::engine --------------------------------------------------------

/// Fast-forward steady-state confirmations (periodic pattern locked).
pub static FF_CONFIRMATIONS: Counter = Counter::new();
/// Iterations skipped analytically by fast-forward.
pub static FF_ITERATIONS: Counter = Counter::new();
/// Engine constructions that reused a warm arena (non-empty FlowNet).
pub static ARENA_REUSE: Counter = Counter::new();
/// Fault-runtime event-loop branches taken (Fault/FaultClear/Resume).
pub static FAULT_BRANCHES: Counter = Counter::new();
/// Epochs simulated to completion.
pub static EPOCHS: Counter = Counter::new();

// --- core profiler / cache ---------------------------------------------

/// Measurement-cache hits.
pub static CACHE_HITS: Counter = Counter::new();
/// Measurement-cache misses.
pub static CACHE_MISSES: Counter = Counter::new();
/// Measurement-cache entries dropped by an explicit clear.
pub static CACHE_EVICTIONS: Counter = Counter::new();
/// Host wall-clock latency of each profiled step measurement, in
/// nanoseconds.
pub static PROFILE_STEP_WALL_NS: Histogram = Histogram::new();

// --- result store -------------------------------------------------------

/// Store lookups answered by a verified on-disk record.
pub static STORE_HITS: Counter = Counter::new();
/// Store lookups that found no record for the key.
pub static STORE_MISSES: Counter = Counter::new();
/// Records durably written (write-temp-fsync-rename completed).
pub static STORE_WRITES: Counter = Counter::new();
/// Store I/O attempts retried after a transient failure.
pub static STORE_RETRIES: Counter = Counter::new();
/// Corrupt records moved to quarantine instead of being read.
pub static STORE_QUARANTINED: Counter = Counter::new();

// --- datapipe -----------------------------------------------------------

/// Simulated service time of each sample-prep stage, in nanoseconds.
pub static DATA_PREP_SERVICE_NS: Histogram = Histogram::new();
/// Simulated service time of each completed fetch transfer, in
/// nanoseconds.
pub static DATA_FETCH_SERVICE_NS: Histogram = Histogram::new();

/// A named counter with its Prometheus help text.
#[derive(Debug)]
pub struct CounterDef {
    /// Metric family name.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// The backing static.
    pub counter: &'static Counter,
}

/// A named high-water gauge with its Prometheus help text.
#[derive(Debug)]
pub struct GaugeDef {
    /// Metric family name.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// The backing static.
    pub gauge: &'static Gauge,
}

/// A named histogram with its Prometheus help text.
#[derive(Debug)]
pub struct HistogramDef {
    /// Metric family name.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// The backing static.
    pub histogram: &'static Histogram,
}

/// Every counter, in canonical (snapshot/exposition) order.
pub static COUNTERS: &[CounterDef] = &[
    CounterDef {
        name: "stash_sim_queue_events_pushed_total",
        help: "Events scheduled into the indexed event queue.",
        counter: &QUEUE_PUSHED,
    },
    CounterDef {
        name: "stash_sim_queue_events_popped_total",
        help: "Events delivered from the indexed event queue.",
        counter: &QUEUE_POPPED,
    },
    CounterDef {
        name: "stash_sim_queue_events_cancelled_total",
        help: "Events cancelled while still pending.",
        counter: &QUEUE_CANCELLED,
    },
    CounterDef {
        name: "stash_sim_solver_full_recomputes_total",
        help: "Full max-min solver recomputations.",
        counter: &SOLVER_FULL_RECOMPUTES,
    },
    CounterDef {
        name: "stash_sim_solver_shortcut_events_total",
        help: "Flow events absorbed by the single-flow shortcut.",
        counter: &SOLVER_SHORTCUT_EVENTS,
    },
    CounterDef {
        name: "stash_sim_solver_rounds_total",
        help: "Water-filling freeze rounds summed over all solves.",
        counter: &SOLVER_ROUNDS,
    },
    CounterDef {
        name: "stash_sim_ff_confirmations_total",
        help: "Fast-forward steady-state confirmations.",
        counter: &FF_CONFIRMATIONS,
    },
    CounterDef {
        name: "stash_sim_ff_iterations_total",
        help: "Iterations skipped analytically by fast-forward.",
        counter: &FF_ITERATIONS,
    },
    CounterDef {
        name: "stash_sim_arena_reuse_total",
        help: "Engine constructions that reused a warm arena.",
        counter: &ARENA_REUSE,
    },
    CounterDef {
        name: "stash_sim_fault_branches_total",
        help: "Fault-runtime event-loop branches taken.",
        counter: &FAULT_BRANCHES,
    },
    CounterDef {
        name: "stash_sim_epochs_total",
        help: "Epochs simulated to completion.",
        counter: &EPOCHS,
    },
    CounterDef {
        name: "stash_cache_hits_total",
        help: "Profiler measurement-cache hits.",
        counter: &CACHE_HITS,
    },
    CounterDef {
        name: "stash_cache_misses_total",
        help: "Profiler measurement-cache misses.",
        counter: &CACHE_MISSES,
    },
    CounterDef {
        name: "stash_cache_evictions_total",
        help: "Measurement-cache entries dropped by an explicit clear.",
        counter: &CACHE_EVICTIONS,
    },
    CounterDef {
        name: "stash_store_hits_total",
        help: "Store lookups answered by a verified on-disk record.",
        counter: &STORE_HITS,
    },
    CounterDef {
        name: "stash_store_misses_total",
        help: "Store lookups that found no record for the key.",
        counter: &STORE_MISSES,
    },
    CounterDef {
        name: "stash_store_writes_total",
        help: "Records durably written to the result store.",
        counter: &STORE_WRITES,
    },
    CounterDef {
        name: "stash_store_retries_total",
        help: "Store I/O attempts retried after a transient failure.",
        counter: &STORE_RETRIES,
    },
    CounterDef {
        name: "stash_store_quarantined_total",
        help: "Corrupt records moved to quarantine instead of being read.",
        counter: &STORE_QUARANTINED,
    },
];

/// Every gauge, in canonical order.
pub static GAUGES: &[GaugeDef] = &[
    GaugeDef {
        name: "stash_sim_queue_depth_high_water",
        help: "High-water mark of live events in the queue.",
        gauge: &QUEUE_DEPTH_HIGH_WATER,
    },
    GaugeDef {
        name: "stash_sim_flows_active_high_water",
        help: "High-water mark of concurrently active flows.",
        gauge: &FLOWS_ACTIVE_HIGH_WATER,
    },
    GaugeDef {
        name: "stash_sim_flow_slots_high_water",
        help: "High-water mark of allocated flow slab slots.",
        gauge: &FLOW_SLOTS_HIGH_WATER,
    },
];

/// Every histogram, in canonical order.
pub static HISTOGRAMS: &[HistogramDef] = &[
    HistogramDef {
        name: "stash_sim_solver_recompute_latency_ns",
        help: "Host wall-clock latency of each full solver recompute (ns).",
        histogram: &SOLVER_RECOMPUTE_LATENCY_NS,
    },
    HistogramDef {
        name: "stash_profile_step_wall_ns",
        help: "Host wall-clock latency of each profiled step measurement (ns).",
        histogram: &PROFILE_STEP_WALL_NS,
    },
    HistogramDef {
        name: "stash_data_prep_service_ns",
        help: "Simulated service time of each sample-prep stage (ns).",
        histogram: &DATA_PREP_SERVICE_NS,
    },
    HistogramDef {
        name: "stash_data_fetch_service_ns",
        help: "Simulated service time of each completed fetch transfer (ns).",
        histogram: &DATA_FETCH_SERVICE_NS,
    },
];

/// Resets every metric in the schema to zero. Snapshot deltas
/// ([`crate::snapshot::Snapshot::since`]) are usually better; this is
/// for process entry points (CLI subcommands) that want a clean slate.
pub fn reset_all() {
    for c in COUNTERS {
        c.counter.reset();
    }
    for g in GAUGES {
        g.gauge.reset();
    }
    for h in HISTOGRAMS {
        h.histogram.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn schema_names_are_unique_and_well_formed() {
        let mut seen = BTreeSet::new();
        let names = COUNTERS
            .iter()
            .map(|c| c.name)
            .chain(GAUGES.iter().map(|g| g.name))
            .chain(HISTOGRAMS.iter().map(|h| h.name));
        for name in names {
            assert!(seen.insert(name), "duplicate metric name {name}");
            assert!(name.starts_with("stash_"), "bad prefix: {name}");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "illegal character in {name}"
            );
        }
        for c in COUNTERS {
            assert!(
                c.name.ends_with("_total"),
                "counter {} lacks _total",
                c.name
            );
        }
        for h in HISTOGRAMS {
            assert!(h.name.ends_with("_ns"), "histogram {} lacks _ns", h.name);
        }
    }
}
