//! Perf regression gating over `stash-telemetry-v1` documents.
//!
//! `stash diff` already fails CI when *workload* stalls regress; this
//! module gives simulator-health metrics the same teeth. Two telemetry
//! snapshots (baseline, current) are compared on ratio-plus-floor
//! thresholds — the floor absorbs bucket quantization and tiny-run
//! noise, the ratio catches the real walls:
//!
//! * **solver p99** — the recompute-latency histogram is the ROADMAP
//!   item-2 scaling wall; a p99 blow-up is exactly the regression the
//!   `flownet_recompute` microbenchmark guards, now visible from any
//!   sweep.
//! * **events per epoch** — queue traffic per simulated epoch; growth
//!   means the engine started scheduling redundant work.
//! * **full solver recomputes per epoch** — shortcut coverage decay;
//!   growth means flow events stopped being absorbed cheaply.

use serde_json::Value;

/// Solver p99 may grow this much (ratio) before failing...
pub const SOLVER_P99_RATIO: f64 = 1.5;
/// ...but never fails below this absolute growth (ns) — absorbs log2
/// bucket quantization (adjacent bucket bounds differ by 2x).
pub const SOLVER_P99_FLOOR_NS: u64 = 50_000;
/// Events/epoch may grow this much (ratio) before failing...
pub const EVENTS_PER_EPOCH_RATIO: f64 = 1.10;
/// ...with this absolute floor (events/epoch).
pub const EVENTS_PER_EPOCH_FLOOR: f64 = 64.0;
/// Full recomputes/epoch may grow this much (ratio) before failing...
pub const RECOMPUTES_PER_EPOCH_RATIO: f64 = 1.25;
/// ...with this absolute floor (recomputes/epoch).
pub const RECOMPUTES_PER_EPOCH_FLOOR: f64 = 16.0;

/// Outcome of a telemetry comparison.
#[derive(Debug, Clone, Default)]
pub struct TelemetryDiff {
    /// Hard failures (non-zero exit): metric, baseline, current.
    pub regressions: Vec<String>,
    /// Informational lines (always printed).
    pub notes: Vec<String>,
}

impl TelemetryDiff {
    /// `true` when nothing regressed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Whether `doc` is a `stash-telemetry-v1` document.
#[must_use]
pub fn is_telemetry_doc(doc: &Value) -> bool {
    doc.get("schema").and_then(Value::as_str) == Some(crate::snapshot::SCHEMA)
}

fn counter(doc: &Value, name: &str) -> u64 {
    doc["counters"][name].as_u64().unwrap_or(0)
}

fn hist_p99(doc: &Value, name: &str) -> u64 {
    doc["histograms"][name]["p99"].as_u64().unwrap_or(0)
}

/// Compares two telemetry documents and applies the health gates.
///
/// # Errors
/// When either document is not schema-tagged `stash-telemetry-v1`.
pub fn diff_docs(baseline: &Value, current: &Value) -> Result<TelemetryDiff, String> {
    for (which, doc) in [("baseline", baseline), ("current", current)] {
        if !is_telemetry_doc(doc) {
            return Err(format!(
                "{which} is not a {} document (schema: {:?})",
                crate::snapshot::SCHEMA,
                doc.get("schema").and_then(Value::as_str).unwrap_or("none"),
            ));
        }
    }
    let mut out = TelemetryDiff::default();

    // Solver recompute-latency p99.
    let base_p99 = hist_p99(baseline, "stash_sim_solver_recompute_latency_ns");
    let cur_p99 = hist_p99(current, "stash_sim_solver_recompute_latency_ns");
    let p99_limit = (base_p99 as f64 * SOLVER_P99_RATIO) + SOLVER_P99_FLOOR_NS as f64;
    let line = format!("solver recompute p99: {base_p99} ns -> {cur_p99} ns");
    if cur_p99 as f64 > p99_limit {
        out.regressions
            .push(format!("{line} (limit {} ns)", p99_limit as u64));
    } else {
        out.notes.push(line);
    }

    // Per-epoch rates. Epoch counts may legitimately differ between the
    // two runs (different iteration budgets), so both sides normalize.
    let base_epochs = counter(baseline, "stash_sim_epochs_total");
    let cur_epochs = counter(current, "stash_sim_epochs_total");
    if base_epochs == 0 || cur_epochs == 0 {
        out.notes.push(format!(
            "events/epoch: skipped (epochs {base_epochs} -> {cur_epochs})"
        ));
        return Ok(out);
    }

    let rate = |doc: &Value, name: &str, epochs: u64| counter(doc, name) as f64 / epochs as f64;
    let gates: [(&str, &str, f64, f64); 2] = [
        (
            "events/epoch",
            "stash_sim_queue_events_popped_total",
            EVENTS_PER_EPOCH_RATIO,
            EVENTS_PER_EPOCH_FLOOR,
        ),
        (
            "full recomputes/epoch",
            "stash_sim_solver_full_recomputes_total",
            RECOMPUTES_PER_EPOCH_RATIO,
            RECOMPUTES_PER_EPOCH_FLOOR,
        ),
    ];
    for (label, metric, ratio, floor) in gates {
        let base = rate(baseline, metric, base_epochs);
        let cur = rate(current, metric, cur_epochs);
        let limit = base * ratio + floor;
        let line = format!("{label}: {base:.1} -> {cur:.1}");
        if cur > limit {
            out.regressions.push(format!("{line} (limit {limit:.1})"));
        } else {
            out.notes.push(line);
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    fn doc(p99_bucket: usize, epochs: u64, popped: u64, recomputes: u64) -> Value {
        let mut s = Snapshot::zero();
        for (name, v) in s.counters.iter_mut() {
            *v = match *name {
                "stash_sim_epochs_total" => epochs,
                "stash_sim_queue_events_popped_total" => popped,
                "stash_sim_solver_full_recomputes_total" => recomputes,
                _ => 0,
            };
        }
        let h = &mut s.histograms[0].1;
        h.count = 100;
        h.buckets[p99_bucket] = 100;
        h.sum = 100;
        s.to_json("instance", "test")
    }

    #[test]
    fn clean_diff_for_identical_docs() {
        let d = doc(17, 10, 1000, 50);
        let out = diff_docs(&d, &d).unwrap();
        assert!(out.is_clean(), "{:?}", out.regressions);
        assert_eq!(out.notes.len(), 3);
    }

    #[test]
    fn solver_p99_regression_fails() {
        // Bucket 17 upper bound is ~131k ns; bucket 21 is ~2.1M ns —
        // far past the 1.5x + 50k limit.
        let base = doc(17, 10, 1000, 50);
        let bad = doc(21, 10, 1000, 50);
        let out = diff_docs(&base, &bad).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].contains("solver recompute p99"));
    }

    #[test]
    fn events_per_epoch_regression_fails() {
        let base = doc(17, 10, 10_000, 50);
        let bad = doc(17, 10, 12_000, 50);
        let out = diff_docs(&base, &bad).unwrap();
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].contains("events/epoch"));
    }

    #[test]
    fn small_absolute_growth_is_absorbed_by_floors() {
        let base = doc(17, 10, 100, 10);
        let near = doc(17, 10, 600, 100);
        let out = diff_docs(&base, &near).unwrap();
        assert!(out.is_clean(), "{:?}", out.regressions);
    }

    #[test]
    fn zero_epochs_skips_rate_gates() {
        let base = doc(17, 0, 0, 0);
        let out = diff_docs(&base, &base).unwrap();
        assert!(out.is_clean());
        assert!(out.notes.iter().any(|n| n.contains("skipped")));
    }

    #[test]
    fn non_telemetry_doc_is_an_error() {
        let d = doc(17, 10, 1000, 50);
        let other: Value = serde_json::from_str(r#"{"schema":"stash-insight-v1"}"#).unwrap();
        assert!(diff_docs(&d, &other).is_err());
        assert!(diff_docs(&other, &d).is_err());
    }
}
