//! Prometheus text exposition: one writer, one strict validator.
//!
//! [`MetricsBuilder`] is the single exposition writer for the whole
//! workspace (the trace crate re-exports it, the bench sweeps and the
//! `stash` CLI render through it). It enforces the format rules so
//! callers cannot produce an unscrapable dump: metric and label names
//! are sanitized to the legal alphabet, label values and `# HELP` text
//! are escaped, and the `# HELP` / `# TYPE` header pair is emitted at
//! most once per family.
//!
//! [`validate`] is the matching strict parser: every `.prom` artifact
//! the workspace emits is round-tripped through it in tests and in
//! `scripts/tier1.sh`.
//!
//! [text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::registry::{bucket_upper_bound, BUCKETS};
use crate::snapshot::Snapshot;

/// Incremental builder for a text-format metrics dump.
#[derive(Debug, Clone, Default)]
pub struct MetricsBuilder {
    out: String,
    families: BTreeSet<String>,
}

impl MetricsBuilder {
    /// An empty dump.
    #[must_use]
    pub fn new() -> MetricsBuilder {
        MetricsBuilder::default()
    }

    /// Starts a metric family: `# HELP` and `# TYPE` lines.
    /// `kind` is the Prometheus type (`counter`, `gauge`, ...).
    ///
    /// Repeated calls for the same (sanitized) name are no-ops — the
    /// format allows each header pair only once per exposition.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut MetricsBuilder {
        let name = sanitize_name(name);
        if !self.families.insert(name.clone()) {
            return self;
        }
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        self
    }

    /// Appends one sample. `labels` are `(key, value)` pairs; pass `&[]`
    /// for an unlabelled sample. Values render with enough precision to
    /// round-trip integers exactly.
    pub fn sample(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) -> &mut MetricsBuilder {
        self.out.push_str(&sanitize_name(name));
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{}=\"{}\"", sanitize_name(k), escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", format_value(value));
        self
    }

    /// Appends a full histogram family: cumulative `_bucket{le=...}`
    /// lines up to the highest populated bucket, a final `+Inf` bucket,
    /// then `_sum` and `_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        buckets: &[u64; BUCKETS],
        count: u64,
        sum: u64,
    ) -> &mut MetricsBuilder {
        self.family(name, "histogram", help);
        let bucket_name = format!("{name}_bucket");
        let last = buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let mut cum = 0u64;
        for (i, &c) in buckets.iter().enumerate().take(last + 1) {
            cum = cum.saturating_add(c);
            let le = bucket_upper_bound(i).to_string();
            self.sample(&bucket_name, &[("le", &le)], cum as f64);
        }
        self.sample(&bucket_name, &[("le", "+Inf")], count as f64);
        self.sample(&format!("{name}_sum"), &[], sum as f64);
        self.sample(&format!("{name}_count"), &[], count as f64);
        self
    }

    /// The accumulated dump.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders a [`Snapshot`] as the canonical `stash_*` exposition, in
/// schema order.
#[must_use]
pub fn render_snapshot(snap: &Snapshot) -> String {
    let mut b = MetricsBuilder::new();
    for (def, &(_, v)) in crate::metrics::COUNTERS.iter().zip(snap.counters.iter()) {
        b.family(def.name, "counter", def.help);
        b.sample(def.name, &[], v as f64);
    }
    for (def, &(_, v)) in crate::metrics::GAUGES.iter().zip(snap.gauges.iter()) {
        b.family(def.name, "gauge", def.help);
        b.sample(def.name, &[], v as f64);
    }
    for (def, (_, h)) in crate::metrics::HISTOGRAMS
        .iter()
        .zip(snap.histograms.iter())
    {
        b.histogram(def.name, def.help, &h.buckets, h.count, h.sum);
    }
    b.finish()
}

/// Maps a metric or label name onto the legal Prometheus alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal byte becomes `_`, and a
/// leading digit gains a `_` prefix.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if legal {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
#[must_use]
pub fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes `# HELP` text, which the format gives its own rules: only
/// `\` and newline are escaped (quotes stay literal).
#[must_use]
pub fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Formats a sample value: integers exactly, floats via `Display`.
#[must_use]
pub fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn legal_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A parsed sample line: `(name, labels, value_text)`.
type ParsedSample = (String, Vec<(String, String)>, String);

/// Splits `name{labels} value` into its parts, honoring quoted/escaped
/// label values.
fn parse_sample(line: &str) -> Result<ParsedSample, String> {
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() && bytes[i] != '{' && bytes[i] != ' ' {
        i += 1;
    }
    let name: String = bytes[..i].iter().collect();
    let mut labels = Vec::new();
    if i < bytes.len() && bytes[i] == '{' {
        i += 1;
        loop {
            if i >= bytes.len() {
                return Err(format!("unterminated label set: {line}"));
            }
            if bytes[i] == '}' {
                i += 1;
                break;
            }
            let key_start = i;
            while i < bytes.len() && bytes[i] != '=' {
                i += 1;
            }
            let key: String = bytes[key_start..i].iter().collect();
            if i + 1 >= bytes.len() || bytes[i + 1] != '"' {
                return Err(format!("label value not quoted: {line}"));
            }
            i += 2;
            let mut val = String::new();
            loop {
                match bytes.get(i) {
                    None => return Err(format!("unterminated label value: {line}")),
                    Some('\\') => {
                        match bytes.get(i + 1) {
                            Some('\\') => val.push('\\'),
                            Some('"') => val.push('"'),
                            Some('n') => val.push('\n'),
                            other => return Err(format!("bad escape {other:?}: {line}")),
                        }
                        i += 2;
                    }
                    Some('"') => {
                        i += 1;
                        break;
                    }
                    Some(&c) => {
                        val.push(c);
                        i += 1;
                    }
                }
            }
            labels.push((key, val));
            if bytes.get(i) == Some(&',') {
                i += 1;
            }
        }
    }
    if bytes.get(i) != Some(&' ') {
        return Err(format!("missing space before value: {line}"));
    }
    let value: String = bytes[i + 1..].iter().collect();
    Ok((name, labels, value))
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|e| format!("bad sample value {other:?}: {e}")),
    }
}

/// Strictly validates a text exposition dump.
///
/// Enforced rules: every family has exactly one `# HELP` immediately
/// followed by its `# TYPE` (with a known type); all metric and label
/// names use the legal alphabet; every sample belongs to a declared
/// family (histogram samples via `_bucket`/`_sum`/`_count`); label sets
/// parse with correct quoting/escaping; values parse as floats; and for
/// each histogram the `le` buckets are cumulative (non-decreasing), end
/// with `+Inf`, and agree with `_count`.
pub fn validate(text: &str) -> Result<(), String> {
    const TYPES: [&str; 5] = ["counter", "gauge", "histogram", "summary", "untyped"];
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    let mut pending_help: Option<String> = None;
    // Per histogram: bucket cumulative values in order, the +Inf bucket
    // value, and the `_count` sample value.
    type HistState = (Vec<f64>, Option<f64>, Option<f64>);
    let mut hist_state: BTreeMap<String, HistState> = BTreeMap::new();

    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if !legal_name(name) {
                return Err(format!("illegal family name in HELP: {name:?}"));
            }
            if families.contains_key(name) {
                return Err(format!("duplicate HELP for {name}"));
            }
            if let Some(prev) = pending_help {
                return Err(format!("HELP {prev} not followed by TYPE"));
            }
            pending_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap_or("");
            let kind = it.next().unwrap_or("");
            if pending_help.as_deref() != Some(name) {
                return Err(format!("TYPE {name} without immediately preceding HELP"));
            }
            pending_help = None;
            if !TYPES.contains(&kind) {
                return Err(format!("unknown metric type {kind:?} for {name}"));
            }
            families.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            // Free-form comment: legal, ignored.
            continue;
        }
        if let Some(prev) = pending_help.take() {
            return Err(format!("HELP {prev} not followed by TYPE"));
        }

        let (name, labels, value_text) = parse_sample(line)?;
        if !legal_name(&name) {
            return Err(format!("illegal metric name: {name:?}"));
        }
        for (k, _) in &labels {
            if !legal_name(k) {
                return Err(format!("illegal label name {k:?} on {name}"));
            }
        }
        let value = parse_value(&value_text)?;

        // Resolve the declaring family: exact name, or the histogram
        // base for `_bucket` / `_sum` / `_count` suffixes.
        let family = if families.contains_key(&name) {
            name.clone()
        } else {
            let base = ["_bucket", "_sum", "_count"]
                .iter()
                .filter_map(|suf| name.strip_suffix(suf))
                .find(|base| families.get(*base).map(String::as_str) == Some("histogram"));
            match base {
                Some(b) => b.to_string(),
                None => return Err(format!("sample for undeclared family: {name}")),
            }
        };

        if families.get(&family).map(String::as_str) == Some("histogram") {
            let state = hist_state.entry(family.clone()).or_default();
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| format!("histogram bucket without le label: {line}"))?;
                if le == "+Inf" {
                    state.1 = Some(value);
                } else {
                    parse_value(&le).map_err(|e| format!("bad le bound: {e}"))?;
                    if state.1.is_some() {
                        return Err(format!("bucket after +Inf for {family}"));
                    }
                    state.0.push(value);
                }
            } else if name.ends_with("_count") {
                state.2 = Some(value);
            }
        }
    }
    if let Some(prev) = pending_help {
        return Err(format!("HELP {prev} not followed by TYPE"));
    }

    for (family, (buckets, inf, count)) in &hist_state {
        let inf = inf.ok_or_else(|| format!("histogram {family} missing +Inf bucket"))?;
        for w in buckets.windows(2) {
            if w[1] < w[0] {
                return Err(format!("histogram {family} buckets not cumulative"));
            }
        }
        if let Some(&last) = buckets.last() {
            if inf < last {
                return Err(format!("histogram {family} +Inf below last bucket"));
            }
        }
        let count = count.ok_or_else(|| format!("histogram {family} missing _count"))?;
        if (count - inf).abs() > 0.0 {
            return Err(format!(
                "histogram {family} _count {count} != +Inf bucket {inf}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_rendering_validates_and_is_deterministic() {
        let mut snap = Snapshot::zero();
        snap.counters[0].1 = 42;
        snap.gauges[0].1 = 9;
        {
            let h = &mut snap.histograms[0].1;
            h.count = 4;
            h.sum = 1000;
            h.buckets[8] = 3;
            h.buckets[64] = 1;
        }
        let a = render_snapshot(&snap);
        let b = render_snapshot(&snap);
        assert_eq!(a, b);
        validate(&a).unwrap();
        assert!(a.contains("stash_sim_queue_events_pushed_total 42"));
        assert!(a.contains("stash_sim_solver_recompute_latency_ns_count 4"));
        assert!(a.contains("le=\"+Inf\"} 4"));
    }

    #[test]
    fn validator_accepts_the_builder_output() {
        let mut b = MetricsBuilder::new();
        b.family("x_total", "counter", "Things.");
        b.sample("x_total", &[("k", "a\"b\\c\nd")], 3.0);
        validate(&b.finish()).unwrap();
    }

    #[test]
    fn validator_rejects_undeclared_family() {
        assert!(validate("orphan_total 1\n").is_err());
    }

    #[test]
    fn validator_rejects_duplicate_help() {
        let text = "# HELP m x\n# TYPE m counter\n# HELP m x\n# TYPE m counter\n";
        assert!(validate(text).is_err());
    }

    #[test]
    fn validator_rejects_help_without_type() {
        assert!(validate("# HELP m x\nm 1\n").is_err());
        assert!(validate("# HELP m x\n").is_err());
    }

    #[test]
    fn validator_rejects_bad_names_and_values() {
        assert!(validate("# HELP 9m x\n# TYPE 9m counter\n9m 1\n").is_err());
        assert!(validate("# HELP m x\n# TYPE m counter\nm abc\n").is_err());
        assert!(validate("# HELP m x\n# TYPE m wibble\nm 1\n").is_err());
    }

    #[test]
    fn validator_rejects_non_cumulative_histogram() {
        let text = "# HELP h x\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate(text).unwrap_err().contains("not cumulative"));
    }

    #[test]
    fn validator_rejects_count_inf_mismatch() {
        let text = "# HELP h x\n# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 6\n";
        assert!(validate(text).unwrap_err().contains("_count"));
    }

    #[test]
    fn validator_rejects_histogram_missing_inf() {
        let text = "# HELP h x\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n";
        assert!(validate(text).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn hostile_labels_round_trip_through_the_validator() {
        let hostile = "# TYPE evil\\path \"quoted\"\nnext{a=\"b\"},c";
        let mut b = MetricsBuilder::new();
        b.family("m_total", "counter", "About m.");
        b.sample("m_total", &[("k", hostile)], 1.0);
        let text = b.finish();
        validate(&text).unwrap();
        let line = text.lines().find(|l| l.starts_with("m_total{")).unwrap();
        let (_, labels, _) = parse_sample(line).unwrap();
        assert_eq!(labels[0].1, hostile);
    }
}
