//! Simulator self-telemetry.
//!
//! The trace crate observes the *workload* (GPU spans, stall categories);
//! this crate observes the *simulator itself*: how often the max-min
//! solver runs and how long it takes, how deep the event queue gets, how
//! often fast-forward confirms, how the measurement cache behaves. The
//! design constraints come straight from the hot paths being measured:
//!
//! * **Lock-free recording.** Every metric is a process-wide static built
//!   from [`std::sync::atomic::AtomicU64`]s; recording is a relaxed
//!   fetch-add (or fetch-max for high-water gauges). No mutex, no map
//!   lookup, no registration.
//! * **Zero steady-state allocation.** The registry is a fixed schema of
//!   statics ([`metrics`]); nothing allocates until a snapshot is taken.
//!   `tests/telemetry_alloc.rs` proves this with a counting allocator.
//! * **Disabled means free.** A single process-wide [`AtomicBool`] gates
//!   every record call; when disabled (the default) a record is one
//!   relaxed load and a predictable branch. The zoo-wide differential
//!   test proves `EpochReport`s are bit-identical either way.
//! * **Deterministic snapshots.** [`snapshot::Snapshot::take`] walks the
//!   schema arrays in declaration order, so JSON and Prometheus dumps
//!   are byte-stable for a given set of recorded values.
//!
//! On top of the registry sit the [`flight`] recorder (a ring buffer of
//! the last N engine events, dumped as JSON on panic or typed error),
//! the [`prom`] exposition writer + strict validator shared by every
//! `.prom` artifact the workspace emits, [`diff`], which gates
//! simulator-health metrics (solver p99, events/epoch) in `stash diff`,
//! and [`series`], the iteration-resolved time-series layer: bounded
//! exact-sum downsampling of per-iteration stall samples, fault-window
//! annotations, and `stash diff` gates on iteration-time *dynamics*
//! (CoV, transient spikes) rather than totals.

use std::sync::atomic::{AtomicBool, Ordering};

pub mod diff;
pub mod flight;
pub mod metrics;
pub mod prom;
pub mod registry;
pub mod series;
pub mod snapshot;

/// Process-wide recording switch. Off by default: a disabled record call
/// is one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns metric recording off (the default).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether recording is currently on.
#[inline(always)]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Everything an instrumentation site or a consumer typically needs.
pub mod prelude {
    pub use crate::flight::{flight_dump, flight_enable, flight_enabled, flight_record};
    pub use crate::metrics;
    pub use crate::prom::MetricsBuilder;
    pub use crate::registry::{Counter, Gauge, Histogram};
    pub use crate::series::{IterSeries, SeriesMeta, SeriesRecorder, SeriesSample};
    pub use crate::snapshot::Snapshot;
    pub use crate::{disable, enable, enabled};
}

#[cfg(test)]
mod tests {
    #[test]
    fn enable_toggles_the_global_switch() {
        // Single test body: the switch is process-wide state, so the
        // transitions are exercised in one place to avoid ordering races
        // with the parallel test harness.
        assert!(!crate::enabled());
        crate::enable();
        assert!(crate::enabled());
        crate::disable();
        assert!(!crate::enabled());
    }
}
