//! The per-node data-loading pipeline.
//!
//! A small pool of workers per GPU (PyTorch `DataLoader` convention; the
//! paper's "16 data loading workers running on the 16x machine" are the
//! per-GPU loader processes), each cycling through **fetch** (SSD or page
//! cache) → **prep** (vCPU decode/augment) → **H2D upload** (PCIe host
//! fabric) and filling a small prefetch queue per GPU. Multiple workers
//! pipeline the three phases so a GPU is fed at the aggregate-CPU rate
//! rather than one worker's serial cycle rate. The loader is a pure state
//! machine emitting [`LoaderAction`]s; the training engine owns the event
//! loop and flow network and feeds completions back in. This keeps the
//! pipeline unit-testable and the contention *emergent*: fetch flows share
//! the SSD link, H2D flows share the PCIe fabric with all-reduce traffic.

use serde::{Deserialize, Serialize};
use stash_dnn::dataset::DatasetSpec;
use stash_flowsim::link::LinkId;
use stash_hwtopo::constants::PREP_IMAGES_PER_VCPU_PER_SEC;
use stash_simkit::time::SimDuration;

use crate::cache::{CacheState, PageCache};

/// Default pipelined workers per GPU (PyTorch `DataLoader` convention:
/// enough to overlap fetch, prep and upload).
pub const DEFAULT_WORKERS_PER_GPU: usize = 3;

/// Static description of one node's pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoaderSpec {
    /// Number of GPUs.
    pub gpus: usize,
    /// Pipelined loader workers per GPU (PyTorch `num_workers`-style).
    pub workers_per_gpu: usize,
    /// vCPUs shared by the workers.
    pub vcpus: usize,
    /// Per-GPU mini-batch size.
    pub per_gpu_batch: u64,
    /// Batches each GPU consumes this epoch.
    pub batches_per_gpu: u64,
    /// Dataset shard streamed by this node.
    pub dataset: DatasetSpec,
    /// Bytes of one decoded sample (uploaded to the GPU).
    pub decoded_sample_bytes: f64,
    /// Cache temperature for the epoch.
    pub cache: CacheState,
    /// Node DRAM (bounds the page cache).
    pub main_memory_bytes: f64,
    /// Max batches buffered per GPU before the worker pauses.
    pub prefetch_depth: usize,
    /// Route for SSD reads.
    pub disk_route: Vec<LinkId>,
    /// Route for page-cache reads.
    pub dram_route: Vec<LinkId>,
    /// Per-GPU host-to-device routes.
    pub h2d_routes: Vec<Vec<LinkId>>,
    /// Per-sample random-read latency of the volume.
    pub per_sample_disk_latency: SimDuration,
}

/// Why a [`LoaderAction::StartTransfer`] moves bytes — lets the engine
/// attribute the flow (and any trace span covering it) to the right
/// pipeline stage without re-deriving it from the route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferPurpose {
    /// Batch read served from the page cache (DRAM route).
    FetchHit,
    /// Batch read served from the volume (disk route, seek latency).
    FetchMiss,
    /// Decoded batch upload to the GPU (H2D route).
    Upload,
}

/// What the engine must do on the loader's behalf.
#[derive(Debug, Clone, PartialEq)]
pub enum LoaderAction {
    /// Start a flow; report completion via [`NodeLoader::transfer_done`].
    StartTransfer {
        /// Worker owning the transfer.
        worker: usize,
        /// Links to traverse.
        route: Vec<LinkId>,
        /// Payload bytes.
        bytes: f64,
        /// Fixed latency (seek overheads etc.).
        extra_latency: SimDuration,
        /// Which pipeline stage the transfer serves.
        purpose: TransferPurpose,
    },
    /// Occupy the worker's CPU share for `duration`; report via
    /// [`NodeLoader::prep_done`].
    StartPrep {
        /// Worker doing the preprocessing.
        worker: usize,
        /// CPU time to charge.
        duration: SimDuration,
    },
    /// A batch landed in `gpu`'s prefetch queue.
    Deliver {
        /// GPU whose queue grew.
        gpu: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerPhase {
    Idle,
    Fetching,
    Prepping,
    Uploading,
    Finished,
}

#[derive(Debug, Clone)]
struct Worker {
    phase: WorkerPhase,
    produced: u64,
    /// The in-flight fetch's transfer parameters, kept so a brownout can
    /// re-issue it; cleared when the fetch completes for good.
    fetch: Option<FetchSpec>,
    /// Whether the in-flight fetch has already been retried (brownouts
    /// cost exactly one deterministic retry, never a loop).
    retried: bool,
}

/// Parameters of one fetch transfer, remembered for brownout retries.
#[derive(Debug, Clone)]
struct FetchSpec {
    route: Vec<LinkId>,
    bytes: f64,
    extra_latency: SimDuration,
    purpose: TransferPurpose,
}

/// Event-driven data loader for one node.
#[derive(Debug, Clone)]
pub struct NodeLoader {
    spec: LoaderSpec,
    workers: Vec<Worker>,
    /// Batches started per GPU (bounds the quota before delivery).
    started: Vec<u64>,
    queue: Vec<usize>,
    cache: PageCache,
    /// Whether the node's volume is currently browned out (fault
    /// injection): disk fetches completing during the window are
    /// re-issued once.
    brownout: bool,
}

impl NodeLoader {
    /// Creates the loader.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (no GPUs, missing H2D routes).
    #[must_use]
    pub fn new(spec: LoaderSpec) -> NodeLoader {
        assert!(spec.gpus > 0, "loader needs at least one GPU");
        assert!(spec.workers_per_gpu > 0, "need at least one worker per GPU");
        assert_eq!(spec.h2d_routes.len(), spec.gpus, "one H2D route per GPU");
        assert!(spec.prefetch_depth > 0, "prefetch depth must be positive");
        let cache = PageCache::new(spec.cache, spec.main_memory_bytes, spec.dataset.total_bytes);
        NodeLoader {
            workers: vec![
                Worker {
                    phase: WorkerPhase::Idle,
                    produced: 0,
                    fetch: None,
                    retried: false,
                };
                spec.gpus * spec.workers_per_gpu
            ],
            started: vec![0; spec.gpus],
            queue: vec![0; spec.gpus],
            cache,
            spec,
            brownout: false,
        }
    }

    /// Opens or closes a disk-brownout window. While open, a disk fetch
    /// that completes is assumed torn and re-issued exactly once; cache
    /// hits and uploads are unaffected. A no-op toggle is harmless.
    pub fn set_brownout(&mut self, on: bool) {
        self.brownout = on;
    }

    /// The GPU a worker feeds.
    fn gpu_of(&self, worker: usize) -> usize {
        worker / self.spec.workers_per_gpu
    }

    /// Kicks every idle worker of `gpu`.
    fn kick_gpu(&mut self, gpu: usize, actions: &mut Vec<LoaderAction>) {
        let lo = gpu * self.spec.workers_per_gpu;
        for w in lo..lo + self.spec.workers_per_gpu {
            self.maybe_begin_batch(w, actions);
        }
    }

    /// Kicks all workers at epoch start.
    #[must_use]
    pub fn start(&mut self) -> Vec<LoaderAction> {
        let mut actions = Vec::new();
        for g in 0..self.spec.gpus {
            self.kick_gpu(g, &mut actions);
        }
        actions
    }

    /// Number of batches currently buffered for `gpu`.
    #[must_use]
    pub fn ready(&self, gpu: usize) -> usize {
        self.queue[gpu]
    }

    /// Consumes one buffered batch for `gpu`; returns `false` (and consumes
    /// nothing) if the queue is empty — the GPU must wait for a
    /// [`LoaderAction::Deliver`]. A successful take may also restart the
    /// paused worker, hence the action list.
    pub fn try_take(&mut self, gpu: usize) -> (bool, Vec<LoaderAction>) {
        if self.queue[gpu] == 0 {
            return (false, Vec::new());
        }
        self.queue[gpu] -= 1;
        let mut actions = Vec::new();
        self.kick_gpu(gpu, &mut actions);
        (true, actions)
    }

    /// A transfer started by this loader finished.
    pub fn transfer_done(&mut self, worker: usize) -> Vec<LoaderAction> {
        let mut actions = Vec::new();
        match self.workers[worker].phase {
            WorkerPhase::Fetching => {
                // A disk read landing inside a brownout window is torn:
                // re-issue it once (deterministically), then let the
                // retry complete even if the window is still open.
                let retry = match &self.workers[worker].fetch {
                    Some(f) if self.brownout && !self.workers[worker].retried => {
                        (f.purpose == TransferPurpose::FetchMiss).then(|| f.clone())
                    }
                    _ => None,
                };
                if let Some(f) = retry {
                    let w = &mut self.workers[worker];
                    w.retried = true;
                    actions.push(LoaderAction::StartTransfer {
                        worker,
                        route: f.route,
                        bytes: f.bytes,
                        extra_latency: f.extra_latency,
                        purpose: f.purpose,
                    });
                    return actions;
                }
                let w = &mut self.workers[worker];
                w.fetch = None;
                w.retried = false;
                w.phase = WorkerPhase::Prepping;
                let duration = self.prep_duration();
                stash_telemetry::metrics::DATA_PREP_SERVICE_NS.record(duration.as_nanos());
                actions.push(LoaderAction::StartPrep { worker, duration });
            }
            WorkerPhase::Uploading => {
                let gpu = self.gpu_of(worker);
                self.workers[worker].produced += 1;
                self.queue[gpu] += 1;
                actions.push(LoaderAction::Deliver { gpu });
                self.workers[worker].phase = WorkerPhase::Idle;
                self.kick_gpu(gpu, &mut actions);
            }
            other => panic!("unexpected transfer completion in phase {other:?}"),
        }
        actions
    }

    /// A preprocessing interval finished.
    pub fn prep_done(&mut self, worker: usize) -> Vec<LoaderAction> {
        assert_eq!(
            self.workers[worker].phase,
            WorkerPhase::Prepping,
            "not prepping"
        );
        self.workers[worker].phase = WorkerPhase::Uploading;
        vec![LoaderAction::StartTransfer {
            worker,
            route: self.spec.h2d_routes[self.gpu_of(worker)].clone(),
            bytes: self.spec.decoded_sample_bytes * self.spec.per_gpu_batch as f64,
            extra_latency: SimDuration::ZERO,
            purpose: TransferPurpose::Upload,
        }]
    }

    /// `true` when every GPU's quota has been started and all workers are
    /// parked.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.started.iter().all(|&s| s >= self.spec.batches_per_gpu)
            && self
                .workers
                .iter()
                .all(|w| matches!(w.phase, WorkerPhase::Idle | WorkerPhase::Finished))
    }

    fn maybe_begin_batch(&mut self, worker: usize, actions: &mut Vec<LoaderAction>) {
        let gpu = self.gpu_of(worker);
        if self.workers[worker].phase != WorkerPhase::Idle {
            return;
        }
        if self.started[gpu] >= self.spec.batches_per_gpu {
            self.workers[worker].phase = WorkerPhase::Finished;
            return;
        }
        // Count in-flight batches of this GPU's other workers against the
        // prefetch budget so the pool does not run arbitrarily far ahead.
        let lo = gpu * self.spec.workers_per_gpu;
        let in_flight = (lo..lo + self.spec.workers_per_gpu)
            .filter(|w| {
                !matches!(
                    self.workers[*w].phase,
                    WorkerPhase::Idle | WorkerPhase::Finished
                )
            })
            .count();
        if self.queue[gpu] + in_flight >= self.spec.prefetch_depth + self.spec.workers_per_gpu - 1 {
            return; // stay idle until the GPU drains the queue
        }
        self.started[gpu] += 1;
        let batch = self.spec.per_gpu_batch;
        let bytes = self.spec.dataset.avg_sample_bytes() * batch as f64;
        let hit = self.cache.next_is_hit();
        let (route, extra) = if hit {
            (self.spec.dram_route.clone(), SimDuration::ZERO)
        } else {
            (
                self.spec.disk_route.clone(),
                self.spec.per_sample_disk_latency * batch,
            )
        };
        let purpose = if hit {
            TransferPurpose::FetchHit
        } else {
            TransferPurpose::FetchMiss
        };
        let w = &mut self.workers[worker];
        w.phase = WorkerPhase::Fetching;
        w.retried = false;
        w.fetch = Some(FetchSpec {
            route: route.clone(),
            bytes,
            extra_latency: extra,
            purpose,
        });
        actions.push(LoaderAction::StartTransfer {
            worker,
            route,
            bytes,
            extra_latency: extra,
            purpose,
        });
    }

    /// Time to preprocess one batch on this worker's static vCPU share.
    #[must_use]
    pub fn prep_duration(&self) -> SimDuration {
        let workers = (self.spec.gpus * self.spec.workers_per_gpu) as f64;
        let cores_per_worker = (self.spec.vcpus as f64 / workers).max(0.25);
        let per_sample =
            self.spec.dataset.prep_cost_factor / (PREP_IMAGES_PER_VCPU_PER_SEC * cores_per_worker);
        SimDuration::from_secs_f64(per_sample * self.spec.per_gpu_batch as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(gpus: usize, batches: u64, cache: CacheState) -> LoaderSpec {
        LoaderSpec {
            gpus,
            workers_per_gpu: 1,
            vcpus: gpus * 8,
            per_gpu_batch: 32,
            batches_per_gpu: batches,
            dataset: DatasetSpec::imagenet1k(),
            decoded_sample_bytes: 602_112.0,
            cache,
            main_memory_bytes: 488e9,
            prefetch_depth: 2,
            disk_route: vec![],
            dram_route: vec![],
            h2d_routes: vec![vec![]; gpus],
            per_sample_disk_latency: SimDuration::from_micros(20),
        }
    }

    /// Drives a loader to completion assuming instantaneous transfers and
    /// preps; returns delivered batch counts per GPU.
    fn drive(loader: &mut NodeLoader) -> Vec<u64> {
        let mut delivered = vec![0_u64; loader.spec.gpus];
        let mut pending: Vec<LoaderAction> = loader.start();
        let mut guard = 0;
        while let Some(a) = pending.pop() {
            guard += 1;
            assert!(guard < 100_000, "loader did not converge");
            match a {
                LoaderAction::StartTransfer { worker, .. } => {
                    pending.extend(loader.transfer_done(worker));
                }
                LoaderAction::StartPrep { worker, .. } => {
                    pending.extend(loader.prep_done(worker));
                }
                LoaderAction::Deliver { gpu } => {
                    delivered[gpu] += 1;
                    // Consume immediately so prefetch never blocks.
                    let (ok, more) = loader.try_take(gpu);
                    assert!(ok);
                    pending.extend(more);
                }
            }
        }
        delivered
    }

    #[test]
    fn delivers_exact_quota_per_gpu() {
        let mut loader = NodeLoader::new(spec(4, 10, CacheState::Cold));
        let delivered = drive(&mut loader);
        assert_eq!(delivered, vec![10, 10, 10, 10]);
        assert!(loader.finished());
    }

    #[test]
    fn cold_fetches_use_disk_route_with_seek_latency() {
        let mut loader = NodeLoader::new(spec(1, 1, CacheState::Cold));
        let actions = loader.start();
        match &actions[0] {
            LoaderAction::StartTransfer { extra_latency, .. } => {
                assert_eq!(*extra_latency, SimDuration::from_micros(20) * 32);
            }
            other => panic!("expected fetch, got {other:?}"),
        }
    }

    #[test]
    fn warm_fetches_have_no_seek_latency() {
        let mut loader = NodeLoader::new(spec(1, 1, CacheState::Warm));
        let actions = loader.start();
        match &actions[0] {
            LoaderAction::StartTransfer { extra_latency, .. } => {
                assert_eq!(*extra_latency, SimDuration::ZERO);
            }
            other => panic!("expected fetch, got {other:?}"),
        }
    }

    #[test]
    fn prefetch_depth_pauses_workers() {
        let mut loader = NodeLoader::new(spec(1, 100, CacheState::Warm));
        // Fill the queue without consuming.
        let mut pending = loader.start();
        let mut delivers = 0;
        let mut guard = 0;
        while let Some(a) = pending.pop() {
            guard += 1;
            assert!(guard < 1000);
            match a {
                LoaderAction::StartTransfer { worker, .. } => {
                    pending.extend(loader.transfer_done(worker))
                }
                LoaderAction::StartPrep { worker, .. } => pending.extend(loader.prep_done(worker)),
                LoaderAction::Deliver { .. } => delivers += 1,
            }
        }
        assert_eq!(delivers, 2, "stops at prefetch depth");
        assert_eq!(loader.ready(0), 2);
        // Draining one batch restarts the worker.
        let (ok, actions) = loader.try_take(0);
        assert!(ok);
        assert!(matches!(actions[0], LoaderAction::StartTransfer { .. }));
    }

    #[test]
    fn try_take_on_empty_queue_blocks() {
        let mut loader = NodeLoader::new(spec(2, 5, CacheState::Cold));
        let (ok, actions) = loader.try_take(1);
        assert!(!ok);
        assert!(actions.is_empty());
    }

    #[test]
    fn prep_time_scales_with_batch_and_cores() {
        let few_cores = NodeLoader::new(LoaderSpec {
            vcpus: 4,
            ..spec(1, 1, CacheState::Warm)
        });
        let many_cores = NodeLoader::new(LoaderSpec {
            vcpus: 32,
            ..spec(1, 1, CacheState::Warm)
        });
        assert!(few_cores.prep_duration() > many_cores.prep_duration());
    }

    #[test]
    fn squad_prep_is_far_cheaper_than_imagenet() {
        let imagenet = NodeLoader::new(spec(1, 1, CacheState::Warm));
        let squad = NodeLoader::new(LoaderSpec {
            dataset: DatasetSpec::squad2(),
            ..spec(1, 1, CacheState::Warm)
        });
        assert!(squad.prep_duration().as_secs_f64() < imagenet.prep_duration().as_secs_f64() / 5.0);
    }

    #[test]
    fn multi_worker_pool_delivers_exact_quota() {
        let mut loader = NodeLoader::new(LoaderSpec {
            workers_per_gpu: 3,
            ..spec(2, 9, CacheState::Warm)
        });
        let delivered = drive(&mut loader);
        assert_eq!(delivered, vec![9, 9]);
        assert!(loader.finished());
    }

    #[test]
    fn multi_worker_pool_pipelines_ahead() {
        // With 3 workers and depth 2, up to queue(2) + in-flight(2 extra)
        // batches may be outstanding before the GPU consumes anything.
        let mut loader = NodeLoader::new(LoaderSpec {
            workers_per_gpu: 3,
            ..spec(1, 100, CacheState::Warm)
        });
        let starts = loader
            .start()
            .iter()
            .filter(|a| matches!(a, LoaderAction::StartTransfer { .. }))
            .count();
        assert_eq!(starts, 3, "all three workers begin fetching immediately");
    }

    #[test]
    fn multi_worker_prep_shares_the_cores() {
        // Same vCPUs split across more workers → each prep takes longer,
        // but aggregate throughput is preserved by parallelism.
        let one = NodeLoader::new(spec(1, 1, CacheState::Warm));
        let three = NodeLoader::new(LoaderSpec {
            workers_per_gpu: 3,
            ..spec(1, 1, CacheState::Warm)
        });
        let ratio = three.prep_duration().as_secs_f64() / one.prep_duration().as_secs_f64();
        assert!((2.9..3.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn workers_map_to_their_gpus() {
        let mut loader = NodeLoader::new(LoaderSpec {
            workers_per_gpu: 2,
            ..spec(2, 4, CacheState::Warm)
        });
        // Drive worker 3 (gpu 1) through a full batch; the delivery must
        // land in gpu 1's queue.
        let _ = loader.start();
        let actions = loader.transfer_done(3); // fetch -> prep
        assert!(matches!(
            actions[0],
            LoaderAction::StartPrep { worker: 3, .. }
        ));
        let actions = loader.prep_done(3); // prep -> upload
        assert!(matches!(
            actions[0],
            LoaderAction::StartTransfer { worker: 3, .. }
        ));
        let actions = loader.transfer_done(3); // upload -> deliver
        assert!(actions
            .iter()
            .any(|a| matches!(a, LoaderAction::Deliver { gpu: 1 })));
        assert_eq!(loader.ready(1), 1);
        assert_eq!(loader.ready(0), 0);
    }

    #[test]
    fn transfer_purposes_label_the_pipeline_stages() {
        let mut warm = NodeLoader::new(spec(1, 1, CacheState::Warm));
        let first = warm.start();
        assert!(matches!(
            first[0],
            LoaderAction::StartTransfer {
                purpose: TransferPurpose::FetchHit,
                ..
            }
        ));
        let _ = warm.transfer_done(0);
        let upload = warm.prep_done(0);
        assert!(matches!(
            upload[0],
            LoaderAction::StartTransfer {
                purpose: TransferPurpose::Upload,
                ..
            }
        ));
        let mut cold = NodeLoader::new(spec(1, 1, CacheState::Cold));
        let first = cold.start();
        assert!(matches!(
            first[0],
            LoaderAction::StartTransfer {
                purpose: TransferPurpose::FetchMiss,
                ..
            }
        ));
    }

    #[test]
    fn brownout_retries_disk_fetches_exactly_once() {
        let mut loader = NodeLoader::new(spec(1, 1, CacheState::Cold));
        let first = loader.start();
        assert!(matches!(
            first[0],
            LoaderAction::StartTransfer {
                purpose: TransferPurpose::FetchMiss,
                ..
            }
        ));
        loader.set_brownout(true);
        // The in-window completion is torn: same fetch re-issued once.
        let retry = loader.transfer_done(0);
        assert_eq!(first, retry, "retry must re-issue the identical fetch");
        // The retry's completion proceeds to prep even while the window
        // is still open (exactly one retry, never a loop).
        let next = loader.transfer_done(0);
        assert!(matches!(next[0], LoaderAction::StartPrep { .. }));
        loader.set_brownout(false);
    }

    #[test]
    fn brownout_leaves_cache_hits_alone() {
        let mut loader = NodeLoader::new(spec(1, 1, CacheState::Warm));
        let _ = loader.start();
        loader.set_brownout(true);
        // Page-cache reads don't touch the volume: no retry.
        let next = loader.transfer_done(0);
        assert!(matches!(next[0], LoaderAction::StartPrep { .. }));
    }

    #[test]
    #[should_panic(expected = "one H2D route per GPU")]
    fn mismatched_routes_rejected() {
        let mut s = spec(2, 1, CacheState::Cold);
        s.h2d_routes.pop();
        let _ = NodeLoader::new(s);
    }
}
