//! # stash-datapipe — training input pipeline
//!
//! The substrate behind the paper's **fetch** (disk) and **prep** (CPU)
//! stalls: per-node data-loading workers that read mini-batches from the
//! SSD or the page cache, preprocess them on a shared vCPU pool and upload
//! them over the PCIe host fabric. Implemented as a pure state machine
//! ([`loader::NodeLoader`]) emitting [`loader::LoaderAction`]s, so the
//! training engine keeps sole ownership of the event loop and flow network
//! — which is what makes SSD contention (16 workers on one gp2 volume) and
//! PCIe contention (uploads vs. all-reduce) emergent rather than scripted.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod loader;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::cache::{CacheState, PageCache};
    pub use crate::loader::{LoaderAction, LoaderSpec, NodeLoader};
}
