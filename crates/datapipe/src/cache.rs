//! Page-cache model.
//!
//! DS-Analyzer's fetch-stall methodology hinges on the OS page cache:
//! step 3 trains with caches *cleared* (every read hits the SSD), step 4
//! with the dataset *fully cached* (reads hit DRAM). The model reduces the
//! cache to a deterministic hit fraction: cold epochs always miss, warm
//! epochs hit for whatever fraction of the dataset fits in the page cache.

use serde::{Deserialize, Serialize};
use stash_hwtopo::constants::PAGE_CACHE_FRACTION;

/// Cache temperature of an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheState {
    /// OS caches cleared before the epoch (DS-Analyzer step 3).
    Cold,
    /// Dataset resident from a previous epoch (DS-Analyzer step 4).
    Warm,
}

/// Deterministic page-cache hit model for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageCache {
    hit_fraction: f64,
    acc: f64,
}

impl PageCache {
    /// Builds the model for an epoch on a node with `main_memory_bytes`
    /// DRAM streaming a dataset shard of `dataset_bytes`.
    #[must_use]
    pub fn new(state: CacheState, main_memory_bytes: f64, dataset_bytes: f64) -> Self {
        let hit_fraction = match state {
            CacheState::Cold => 0.0,
            CacheState::Warm => {
                if dataset_bytes <= 0.0 {
                    1.0
                } else {
                    (main_memory_bytes * PAGE_CACHE_FRACTION / dataset_bytes).min(1.0)
                }
            }
        };
        PageCache {
            hit_fraction,
            acc: 0.0,
        }
    }

    /// The stationary hit fraction.
    #[must_use]
    pub fn hit_fraction(&self) -> f64 {
        self.hit_fraction
    }

    /// Decides whether the next batch read hits the cache. Deterministic:
    /// hits are spread evenly (error-diffusion), so a 0.75 fraction yields
    /// exactly 3 hits out of every 4 calls.
    pub fn next_is_hit(&mut self) -> bool {
        self.acc += self.hit_fraction;
        if self.acc >= 1.0 - 1e-12 {
            self.acc -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_never_hits() {
        let mut c = PageCache::new(CacheState::Cold, 1e12, 1e9);
        assert_eq!(c.hit_fraction(), 0.0);
        assert!((0..100).all(|_| !c.next_is_hit()));
    }

    #[test]
    fn warm_with_big_dram_always_hits() {
        let mut c = PageCache::new(CacheState::Warm, 768e9, 133e9);
        assert_eq!(c.hit_fraction(), 1.0);
        assert!((0..100).all(|_| c.next_is_hit()));
    }

    #[test]
    fn warm_partial_cache_hits_proportionally() {
        // 40 GB usable cache over an 80 GB dataset → 50% hits.
        let mut c = PageCache::new(CacheState::Warm, 50e9, 80e9 * PAGE_CACHE_FRACTION / 0.8);
        let f = c.hit_fraction();
        assert!(f > 0.0 && f < 1.0);
        let hits = (0..1000).filter(|_| c.next_is_hit()).count();
        assert!(
            (hits as f64 - 1000.0 * f).abs() <= 1.0,
            "hits={hits}, f={f}"
        );
    }

    #[test]
    fn empty_dataset_is_always_warm_hit() {
        let c = PageCache::new(CacheState::Warm, 1e9, 0.0);
        assert_eq!(c.hit_fraction(), 1.0);
    }
}
