//! # stash-collectives — gradient synchronisation
//!
//! Models how data-parallel training exchanges gradients:
//!
//! * [`bucket`] — grouping gradients into buckets as the backward pass
//!   releases them (per-layer, matching the paper's §VI analysis, or
//!   size-capped like PyTorch DDP);
//! * [`schedule`] — lowering one all-reduce onto topology transfers for
//!   the ring (default), tree and parameter-server algorithms;
//! * [`constants`] — launch/hook/staging overheads (the `tau` of the
//!   paper's analytic model).
//!
//! # Examples
//!
//! ```
//! use stash_collectives::prelude::*;
//! use stash_dnn::zoo;
//!
//! let plan = CommPlan::new(&zoo::resnet18(), Bucketing::PerLayer);
//! assert_eq!(plan.bucket_count(), zoo::resnet18().trainable_layer_count());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bucket;
pub mod constants;
pub mod schedule;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::bucket::{Bucket, Bucketing, CommPlan};
    pub use crate::schedule::{
        allreduce_transfers, allreduce_transfers_among, ring_duration_estimate, Algorithm,
        TransferSpec,
    };
}
