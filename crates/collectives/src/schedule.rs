//! Lowering a collective operation onto topology transfers.
//!
//! [`allreduce_transfers`] turns "all-reduce `b` bytes across these ranks"
//! into a set of concurrent flow specifications; the training engine starts
//! them in the flow network and the collective completes when every flow
//! does. Three algorithms are provided: ring (NCCL's default, used by the
//! paper), a binary tree, and a central parameter server (the baseline the
//! paper cites as strictly worse).

use serde::{Deserialize, Serialize};
use stash_flowsim::link::{LinkClass, LinkId};
use stash_flowsim::net::FlowNet;
use stash_hwtopo::topology::{GpuId, Topology};
use stash_simkit::time::SimDuration;

use crate::constants::{
    BUCKET_LAUNCH_OVERHEAD, RING_STEP_OVERHEAD, STAGED_COPY_FACTOR, TREE_ROUND_OVERHEAD,
};

/// Collective algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Algorithm {
    /// Bandwidth-optimal ring all-reduce (reduce-scatter + all-gather).
    #[default]
    Ring,
    /// Binary-tree reduce + broadcast.
    Tree,
    /// Central parameter server on rank 0's node (baseline; paper §III).
    ParameterServer,
}

impl Algorithm {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Ring => "ring",
            Algorithm::Tree => "tree",
            Algorithm::ParameterServer => "parameter-server",
        }
    }
}

/// One transfer of a collective: a route plus payload and fixed overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferSpec {
    /// Links traversed.
    pub route: Vec<LinkId>,
    /// Payload bytes (already including staging multipliers).
    pub bytes: f64,
    /// Fixed latency beyond link propagation (pipeline steps, launch).
    pub extra_latency: SimDuration,
}

fn staging_factor(net: &FlowNet, route: &[LinkId]) -> f64 {
    if route
        .iter()
        .any(|l| net.link(*l).class == LinkClass::PcieHostBus)
    {
        STAGED_COPY_FACTOR
    } else {
        1.0
    }
}

/// Lowers one all-reduce of `bytes` over all ranks of `topo`.
///
/// Returns an empty vector for a single-rank world (no communication).
///
/// # Panics
///
/// Panics if `bytes` is negative.
#[must_use]
pub fn allreduce_transfers(
    topo: &Topology,
    net: &FlowNet,
    algo: Algorithm,
    bytes: f64,
) -> Vec<TransferSpec> {
    assert!(bytes >= 0.0, "negative payload");
    let ranks = topo.ring_order();
    allreduce_transfers_among(topo, net, algo, bytes, &ranks)
}

/// Lowers one all-reduce of `bytes` over an explicit subset of ranks —
/// the elastic-training path: after a permanent node preemption the
/// survivors re-form the collective over the remaining GPUs only.
///
/// `ranks` must be pairwise distinct; their order defines the ring.
/// Returns an empty vector when fewer than two ranks participate.
///
/// # Panics
///
/// Panics if `bytes` is negative.
#[must_use]
pub fn allreduce_transfers_among(
    topo: &Topology,
    net: &FlowNet,
    algo: Algorithm,
    bytes: f64,
    ranks: &[GpuId],
) -> Vec<TransferSpec> {
    assert!(bytes >= 0.0, "negative payload");
    if ranks.len() <= 1 {
        return Vec::new();
    }
    match algo {
        Algorithm::Ring => ring(topo, net, ranks, bytes),
        Algorithm::Tree => tree(topo, net, ranks, bytes),
        Algorithm::ParameterServer => parameter_server(topo, net, ranks, bytes),
    }
}

/// Ring all-reduce: each rank keeps one flow to its successor alive for the
/// whole collective, carrying the aggregate `2 (p-1)/p · b` traffic of the
/// reduce-scatter + all-gather phases. Because chunks are pipelined, the
/// latency cost is one trip *around the ring* per phase (two phases), not
/// `2(p-1)` times each hop's latency — charged equally on every flow.
fn ring(topo: &Topology, net: &FlowNet, ranks: &[GpuId], bytes: f64) -> Vec<TransferSpec> {
    let p = ranks.len() as f64;
    let routes: Vec<Vec<LinkId>> = ranks
        .iter()
        .enumerate()
        .map(|(i, &src)| topo.gpu_route(src, ranks[(i + 1) % ranks.len()]))
        .collect();
    let ring_latency: SimDuration = routes
        .iter()
        .map(|r| r.iter().map(|l| net.link(*l).latency).sum::<SimDuration>() + RING_STEP_OVERHEAD)
        .sum();
    let pipeline = ring_latency * 2; // reduce-scatter + all-gather
    routes
        .into_iter()
        .map(|route| {
            let payload = 2.0 * (p - 1.0) / p * bytes * staging_factor(net, &route);
            TransferSpec {
                route,
                bytes: payload,
                extra_latency: BUCKET_LAUNCH_OVERHEAD + pipeline,
            }
        })
        .collect()
}

/// Binary-tree all-reduce: reduce up the tree then broadcast down. Each
/// tree edge carries `b` bytes each way.
fn tree(topo: &Topology, net: &FlowNet, ranks: &[GpuId], bytes: f64) -> Vec<TransferSpec> {
    let rounds = ranks.len().next_power_of_two().trailing_zeros() as u64;
    let mut out = Vec::new();
    for (i, &child) in ranks.iter().enumerate().skip(1) {
        let parent = ranks[(i - 1) / 2];
        for (src, dst) in [(child, parent), (parent, child)] {
            let route = topo.gpu_route(src, dst);
            let payload = bytes * staging_factor(net, &route);
            out.push(TransferSpec {
                route,
                bytes: payload,
                extra_latency: BUCKET_LAUNCH_OVERHEAD + TREE_ROUND_OVERHEAD * (2 * rounds),
            });
        }
    }
    out
}

/// Parameter server: every non-server rank pushes `b` bytes to the server
/// (rank 0) and pulls `b` bytes back; the server's links are the funnel.
fn parameter_server(
    topo: &Topology,
    net: &FlowNet,
    ranks: &[GpuId],
    bytes: f64,
) -> Vec<TransferSpec> {
    let server = ranks[0];
    let mut out = Vec::new();
    for &worker in &ranks[1..] {
        for (src, dst) in [(worker, server), (server, worker)] {
            let route = topo.gpu_route(src, dst);
            let payload = bytes * staging_factor(net, &route);
            out.push(TransferSpec {
                route,
                bytes: payload,
                extra_latency: BUCKET_LAUNCH_OVERHEAD,
            });
        }
    }
    out
}

/// Closed-form duration estimate of one ring all-reduce, ignoring
/// contention from other traffic — used by the paper-§VI analytic model and
/// as a cross-check against the simulated engine.
#[must_use]
pub fn ring_duration_estimate(topo: &Topology, net: &FlowNet, bytes: f64) -> SimDuration {
    let transfers = allreduce_transfers(topo, net, Algorithm::Ring, bytes);
    if transfers.is_empty() {
        return SimDuration::ZERO;
    }
    let rates = net.probe_rates(
        &transfers
            .iter()
            .map(|t| t.route.clone())
            .collect::<Vec<_>>(),
    );
    transfers
        .iter()
        .zip(rates)
        .map(|(t, rate)| {
            let lat: SimDuration = t.route.iter().map(|l| net.link(*l).latency).sum();
            t.extra_latency + lat + SimDuration::from_secs_f64(t.bytes / rate)
        })
        .max()
        .unwrap_or(SimDuration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_hwtopo::cluster::ClusterSpec;
    use stash_hwtopo::instance::{p2_16xlarge, p2_8xlarge, p2_xlarge, p3_16xlarge, p3_8xlarge};

    fn topo_of(cluster: ClusterSpec) -> (Topology, FlowNet) {
        let mut net = FlowNet::new();
        let t = Topology::build(&cluster, &mut net);
        (t, net)
    }

    #[test]
    fn single_gpu_needs_no_transfers() {
        let (t, net) = topo_of(ClusterSpec::single(p2_xlarge()));
        assert!(allreduce_transfers(&t, &net, Algorithm::Ring, 1e6).is_empty());
    }

    #[test]
    fn ring_has_one_flow_per_rank() {
        let (t, net) = topo_of(ClusterSpec::single(p3_16xlarge()));
        let flows = allreduce_transfers(&t, &net, Algorithm::Ring, 1e6);
        assert_eq!(flows.len(), 8);
        // NVLink routes: no staging → payload = 2*7/8 * b.
        for f in &flows {
            assert!((f.bytes - 2.0 * 7.0 / 8.0 * 1e6).abs() < 1.0);
        }
    }

    #[test]
    fn p2_ring_is_staged_through_host() {
        let (t, net) = topo_of(ClusterSpec::single(p2_8xlarge()));
        let flows = allreduce_transfers(&t, &net, Algorithm::Ring, 1e6);
        for f in &flows {
            assert!((f.bytes - 2.0 * 7.0 / 8.0 * 1e6 * STAGED_COPY_FACTOR).abs() < 1.0);
        }
    }

    #[test]
    fn survivor_subset_ring_skips_the_dead_node() {
        let (t, net) = topo_of(ClusterSpec::homogeneous(p3_8xlarge(), 2));
        // Node 1 was preempted: only node 0's four ranks remain.
        let survivors: Vec<GpuId> = t.ring_order().into_iter().filter(|g| g.node == 0).collect();
        let flows = allreduce_transfers_among(&t, &net, Algorithm::Ring, 1e6, &survivors);
        assert_eq!(flows.len(), 4);
        let p = survivors.len() as f64;
        for f in &flows {
            assert!(
                (f.bytes / staging_factor(&net, &f.route) - 2.0 * (p - 1.0) / p * 1e6).abs() < 1.0
            );
        }
        // One survivor → no communication at all.
        assert!(
            allreduce_transfers_among(&t, &net, Algorithm::Ring, 1e6, &survivors[..1]).is_empty()
        );
        // The full rank set matches the topo-wide lowering exactly.
        let all = t.ring_order();
        assert_eq!(
            allreduce_transfers_among(&t, &net, Algorithm::Ring, 1e6, &all),
            allreduce_transfers(&t, &net, Algorithm::Ring, 1e6)
        );
    }

    #[test]
    fn tree_and_ps_produce_bidirectional_edges() {
        let (t, net) = topo_of(ClusterSpec::single(p3_16xlarge()));
        assert_eq!(
            allreduce_transfers(&t, &net, Algorithm::Tree, 1e6).len(),
            14
        );
        assert_eq!(
            allreduce_transfers(&t, &net, Algorithm::ParameterServer, 1e6).len(),
            14
        );
    }

    #[test]
    fn ring_beats_parameter_server_across_nodes() {
        // The paper (§III/§IV) treats PS as strictly worse than all-reduce;
        // across two networked instances the PS funnel saturates the
        // server NIC.
        let (t, net) = topo_of(ClusterSpec::homogeneous(p3_8xlarge(), 2));
        let b = 100e6;
        let ring_flows = allreduce_transfers(&t, &net, Algorithm::Ring, b);
        let ps_flows = allreduce_transfers(&t, &net, Algorithm::ParameterServer, b);
        let dur = |flows: &[TransferSpec]| {
            let rates = net.probe_rates(&flows.iter().map(|f| f.route.clone()).collect::<Vec<_>>());
            flows
                .iter()
                .zip(rates)
                .map(|(f, r)| f.bytes / r)
                .fold(0.0_f64, f64::max)
        };
        assert!(
            dur(&ps_flows) > 1.5 * dur(&ring_flows),
            "ps={} ring={}",
            dur(&ps_flows),
            dur(&ring_flows)
        );
    }

    #[test]
    fn nvlink_ring_is_far_faster_than_pcie_ring() {
        let (t16, n16) = topo_of(ClusterSpec::single(p3_16xlarge()));
        let (t2, n2) = topo_of(ClusterSpec::single(p2_16xlarge()));
        let b = 50e6;
        let nv = ring_duration_estimate(&t16, &n16, b);
        let pcie = ring_duration_estimate(&t2, &n2, b);
        assert!(
            pcie.as_secs_f64() > 10.0 * nv.as_secs_f64(),
            "pcie={pcie} nv={nv}"
        );
    }

    #[test]
    fn network_ring_is_slowest() {
        let (t, n) = topo_of(ClusterSpec::homogeneous(p3_8xlarge(), 2));
        let (t16, n16) = topo_of(ClusterSpec::single(p3_16xlarge()));
        let b = 50e6;
        let networked = ring_duration_estimate(&t, &n, b);
        let single = ring_duration_estimate(&t16, &n16, b);
        assert!(networked.as_secs_f64() > 5.0 * single.as_secs_f64());
    }

    #[test]
    fn degraded_slice_stages_only_the_crossing_hops() {
        use stash_hwtopo::instance::p3_8xlarge_sliced;
        use stash_hwtopo::interconnect::Slicing;
        let (t, net) = topo_of(ClusterSpec::single(p3_8xlarge_sliced(Slicing::Degraded)));
        let flows = allreduce_transfers(&t, &net, Algorithm::Ring, 1e6);
        let staged = flows
            .iter()
            .filter(|f| (f.bytes - 2.0 * 3.0 / 4.0 * 1e6 * STAGED_COPY_FACTOR).abs() < 1.0)
            .count();
        let direct = flows
            .iter()
            .filter(|f| (f.bytes - 2.0 * 3.0 / 4.0 * 1e6).abs() < 1.0)
            .count();
        // Ring 0→1→2→3→0: hops 1→2 and 3→0 cross crossbars.
        assert_eq!(staged, 2, "{flows:?}");
        assert_eq!(direct, 2);
    }

    #[test]
    fn ring_duration_grows_with_payload_and_world() {
        let (t8, n8) = topo_of(ClusterSpec::single(p3_16xlarge()));
        let small = ring_duration_estimate(&t8, &n8, 1e6);
        let big = ring_duration_estimate(&t8, &n8, 1e9);
        assert!(big > small);
        let (t4, n4) = topo_of(ClusterSpec::single(p3_8xlarge()));
        // Same payload, fewer ranks but degraded slice: the 4-GPU degraded
        // ring is SLOWER than the 8-GPU full crossbar — the Fig. 11 anomaly
        // at the schedule level.
        let four_degraded = ring_duration_estimate(&t4, &n4, 1e8);
        let eight_full = ring_duration_estimate(&t8, &n8, 1e8);
        assert!(four_degraded > eight_full);
    }

    #[test]
    fn zero_byte_collective_still_pays_latency() {
        let (t, net) = topo_of(ClusterSpec::single(p3_16xlarge()));
        let d = ring_duration_estimate(&t, &net, 0.0);
        assert!(d >= BUCKET_LAUNCH_OVERHEAD);
    }

    #[test]
    fn algorithm_labels() {
        assert_eq!(Algorithm::Ring.label(), "ring");
        assert_eq!(Algorithm::Tree.label(), "tree");
        assert_eq!(Algorithm::ParameterServer.label(), "parameter-server");
        assert_eq!(Algorithm::default(), Algorithm::Ring);
    }
}
