//! Gradient bucketing.
//!
//! During the backward pass, gradients become final layer by layer (in
//! reverse model order) and are grouped into *buckets*; each bucket is
//! all-reduced as one collective. The paper's §VI analysis assumes one
//! synchronisation per parameter-carrying layer ([`Bucketing::PerLayer`],
//! our default); PyTorch's production default caps buckets by size
//! ([`Bucketing::BySize`], 25 MB) — kept as an ablation.

use serde::{Deserialize, Serialize};
use stash_dnn::model::Model;

/// Bucket-formation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Bucketing {
    /// One bucket per parameter-carrying layer (paper §VI model; default).
    #[default]
    PerLayer,
    /// Greedily pack consecutive (reverse-order) gradients until the bucket
    /// reaches `bytes` (PyTorch DDP defaults to 25 MB).
    BySize {
        /// Bucket capacity in bytes.
        bytes: f64,
    },
}

impl Bucketing {
    /// PyTorch DDP's default 25 MB size-capped bucketing.
    #[must_use]
    pub fn pytorch_default() -> Self {
        Bucketing::BySize {
            bytes: 25.0 * 1024.0 * 1024.0,
        }
    }
}

/// One gradient bucket: a contiguous run of layers in backward order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Position in backward order (0 = first bucket to synchronise).
    pub index: usize,
    /// Gradient payload in bytes.
    pub bytes: f64,
    /// Covered layers as forward indices `[lo, hi)`; the engine charges
    /// this range's backward compute before the bucket becomes ready.
    pub layer_range: (usize, usize),
}

/// The full communication plan of one backward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommPlan {
    /// Buckets in backward (synchronisation) order. Always at least one,
    /// covering all layers; a parameterless model yields one empty bucket.
    pub buckets: Vec<Bucket>,
}

impl CommPlan {
    /// Builds the plan for `model` under `bucketing`.
    #[must_use]
    pub fn new(model: &Model, bucketing: Bucketing) -> CommPlan {
        let n = model.layers.len();
        let mut buckets = Vec::new();
        let mut hi = n; // exclusive upper bound of the current bucket
        let mut acc_bytes = 0.0;
        for i in (0..n).rev() {
            let layer = &model.layers[i];
            acc_bytes += layer.gradient_bytes();
            let close = match bucketing {
                Bucketing::PerLayer => layer.has_params(),
                Bucketing::BySize { bytes } => acc_bytes >= bytes,
            };
            if close && i > 0 {
                buckets.push(Bucket {
                    index: buckets.len(),
                    bytes: acc_bytes,
                    layer_range: (i, hi),
                });
                hi = i;
                acc_bytes = 0.0;
            }
        }
        // Remainder (always closes at the model head).
        buckets.push(Bucket {
            index: buckets.len(),
            bytes: acc_bytes,
            layer_range: (0, hi),
        });
        CommPlan { buckets }
    }

    /// Number of buckets (i.e. collectives per iteration).
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Total gradient bytes across all buckets.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.buckets.iter().map(|b| b.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_dnn::zoo;

    #[test]
    fn per_layer_matches_trainable_layer_count() {
        for (m, _) in zoo::all_models() {
            let plan = CommPlan::new(&m, Bucketing::PerLayer);
            // One bucket per param layer (the head bucket always exists and
            // absorbs leading parameterless layers).
            assert_eq!(plan.bucket_count(), m.trainable_layer_count(), "{}", m.name);
            assert!(
                (plan.total_bytes() - m.gradient_bytes()).abs() < 1.0,
                "{}",
                m.name
            );
        }
    }

    #[test]
    fn ranges_partition_all_layers_in_reverse() {
        let m = zoo::resnet50();
        let plan = CommPlan::new(&m, Bucketing::PerLayer);
        let mut expected_hi = m.layers.len();
        for b in &plan.buckets {
            assert_eq!(b.layer_range.1, expected_hi);
            assert!(b.layer_range.0 < b.layer_range.1);
            expected_hi = b.layer_range.0;
        }
        assert_eq!(expected_hi, 0);
    }

    #[test]
    fn by_size_respects_cap_approximately() {
        let m = zoo::vgg11();
        let cap = 25.0 * 1024.0 * 1024.0;
        let plan = CommPlan::new(&m, Bucketing::pytorch_default());
        // Buckets close as soon as they reach the cap, so every bucket is
        // at most cap + one layer's gradients (a single fc layer in VGG11
        // is itself several hundred MB).
        let largest_layer = m
            .layers
            .iter()
            .map(stash_dnn::layer::Layer::gradient_bytes)
            .fold(0.0_f64, f64::max);
        for b in &plan.buckets {
            assert!(b.bytes <= cap + largest_layer);
        }
        assert!(plan.bucket_count() > 1);
        assert!((plan.total_bytes() - m.gradient_bytes()).abs() < 1.0);
    }

    #[test]
    fn by_size_gives_fewer_buckets_than_per_layer_for_deep_models() {
        let m = zoo::resnet50();
        let per_layer = CommPlan::new(&m, Bucketing::PerLayer);
        let by_size = CommPlan::new(&m, Bucketing::pytorch_default());
        assert!(by_size.bucket_count() < per_layer.bucket_count() / 4);
    }

    #[test]
    fn single_layer_model_has_one_bucket() {
        use stash_dnn::layer::Layer;
        use stash_dnn::model::Model;
        let m = Model::new("one", vec![Layer::linear("fc", 8, 8)], 32.0);
        let plan = CommPlan::new(&m, Bucketing::PerLayer);
        assert_eq!(plan.bucket_count(), 1);
        assert_eq!(plan.buckets[0].layer_range, (0, 1));
    }

    #[test]
    fn default_bucketing_is_per_layer() {
        assert_eq!(Bucketing::default(), Bucketing::PerLayer);
    }
}
