//! Calibration constants of the collective-communication model.
//!
//! Like `stash_hwtopo::constants`, these are the tuned numbers; everything
//! else derives from topology and gradient sizes.

use stash_simkit::time::SimDuration;

/// Traffic multiplier for ring hops that cross the PCIe host fabric
/// without peer-to-peer DMA: every chunk is staged through host memory
/// (device-to-host + host-to-device), doubling bus crossings. This is the
/// K80-era NCCL behaviour on P2 instances.
pub const STAGED_COPY_FACTOR: f64 = 2.0;

/// Fixed cost to launch one bucket's all-reduce across all ranks (DDP
/// autograd-hook dispatch + NCCL kernel enqueue + stream sync). Part of the
/// per-layer latency `tau` in the paper's §VI analytic model.
pub const BUCKET_LAUNCH_OVERHEAD: SimDuration = SimDuration::from_micros(120);

/// CPU-side gradient-hook cost charged *inside* the backward pass per
/// bucket (GIL + bucket bookkeeping). Unlike the launch overhead this is
/// never overlappable — it is why deep many-layer models stall on even the
/// fastest interconnect (paper §VI-A2).
pub const GRAD_HOOK_OVERHEAD: SimDuration = SimDuration::from_micros(60);

/// Per-ring-step protocol overhead beyond link propagation latency
/// (chunk handshake, kernel-side flag spinning).
pub const RING_STEP_OVERHEAD: SimDuration = SimDuration::from_micros(5);

/// Per-round overhead of tree collectives.
pub const TREE_ROUND_OVERHEAD: SimDuration = SimDuration::from_micros(15);

#[cfg(test)]
mod tests {
    #![allow(clippy::assertions_on_constants)] // the constants ARE the test subject
    use super::*;

    #[test]
    fn overheads_are_microsecond_scale() {
        assert!(BUCKET_LAUNCH_OVERHEAD < SimDuration::from_millis(1));
        assert!(GRAD_HOOK_OVERHEAD < BUCKET_LAUNCH_OVERHEAD);
        assert!(STAGED_COPY_FACTOR >= 1.0);
    }
}
