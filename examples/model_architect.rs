//! Model-architecture micro-characterization (paper §VI): how layer
//! count and gradient volume drive communication stalls, and what the
//! batch-norm / residual ablations change.
//!
//! Use this to decide *where* to run a model: deep, thin models (ResNet)
//! are latency-bound — fine without the best interconnect; shallow, fat
//! models (VGG) are bandwidth-bound — keep them off the network.
//!
//! ```sh
//! cargo run --release --example model_architect
//! ```

use stash::prelude::*;

fn main() {
    let nvlink = ClusterSpec::single(p3_16xlarge());
    let network = ClusterSpec::homogeneous(p3_8xlarge(), 2);

    println!("closed-form §VI model: T = (tau + G/(L*B)) * L\n");
    let nv = link_parameters(&nvlink);
    let nw = link_parameters(&network);
    println!(
        "p3.16xlarge (NVLink): tau = {:.0} us, B = {:.1} GB/s",
        nv.tau_seconds * 1e6,
        nv.bandwidth_bps / 1e9
    );
    println!(
        "p3.8xlarge*2 (network): tau = {:.0} us, B = {:.2} GB/s\n",
        nw.tau_seconds * 1e6,
        nw.bandwidth_bps / 1e9
    );

    println!(
        "{:<18} {:>7} {:>10} {:>14} {:>14}",
        "model", "layers", "grads(MB)", "I/C comm (NV)", "N/W comm (net)"
    );
    let mut models: Vec<Model> = Vec::new();
    for depth in [18, 34, 50, 101, 152] {
        models.push(resnet(depth));
    }
    for depth in [11, 13, 16, 19] {
        models.push(vgg(depth));
    }
    // §VI-A3 ablations on ResNet50.
    models.push(resnet_with(
        50,
        ResNetOptions {
            batch_norm: false,
            residual: true,
        },
    ));
    models.push(resnet_with(
        50,
        ResNetOptions {
            batch_norm: true,
            residual: false,
        },
    ));

    for model in &models {
        let ic = comm_estimate(&nvlink, model, Bucketing::PerLayer);
        let net = comm_estimate(&network, model, Bucketing::PerLayer);
        println!(
            "{:<18} {:>7} {:>10.1} {:>14} {:>14}",
            model.name,
            ic.sync_points,
            ic.gradient_bytes / 1e6,
            ic.total.to_string(),
            net.total.to_string(),
        );
    }

    println!("\ntakeaways (match the paper's Fig. 16):");
    println!(" - interconnect cost grows with LAYERS: ResNet152 pays ~tau*L on NVLink");
    println!(" - network cost grows with GRADIENT BYTES: VGG pays ~G/B on the 10 Gbps link");
    println!(" - removing batch-norm removes sync points -> lower interconnect stall");
    println!(" - removing residuals changes (almost) nothing: shortcuts carry no gradients");
}
