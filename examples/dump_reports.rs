//! Dumps one serialized `StallReport` JSON line per (cluster, model,
//! batch) combination over a diverse grid — P2 and P3, single- and
//! multi-node, four models, two batch sizes, real-data cold and warm
//! pipelines.
//!
//! Purpose: cross-revision bit-identity checks. Run it on two revisions
//! (copy the file into a worktree of the other revision if needed) and
//! `diff` the outputs; any simulator change that claims determinism
//! preservation must produce byte-identical lines. The PR 4
//! zero-allocation core was validated exactly this way against the
//! prior core.
//!
//! ```sh
//! cargo run --release --example dump_reports > /tmp/reports.txt
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_core::profiler::Stash;
use stash_dnn::model::Model;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{
    p2_16xlarge, p2_8xlarge, p3_16xlarge, p3_24xlarge, p3_2xlarge, p3_8xlarge,
};

fn main() {
    let clusters: Vec<ClusterSpec> = vec![
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p3_24xlarge()),
        ClusterSpec::single(p2_16xlarge()),
        ClusterSpec::homogeneous(p2_8xlarge(), 2),
    ];
    let models: Vec<Model> = vec![
        zoo::alexnet(),
        zoo::resnet18(),
        zoo::resnet50(),
        zoo::bert_large(),
    ];
    for c in &clusters {
        for m in &models {
            for batch in [32_u64, 8] {
                let s = Stash::new(m.clone())
                    .with_batch(batch)
                    .with_sampled_iterations(40)
                    .with_epoch_samples(200_000);
                match s.profile_serial(c) {
                    Ok(r) => println!("{}", serde_json::to_string(&r).unwrap()),
                    Err(e) => println!("{} {} {batch}: ERR {e:?}", c.display_name(), m.name),
                }
            }
        }
    }
}
