//! Build and query the characterization database — the artifact the
//! paper's economics rest on: the authors pay for the characterization
//! once, tenants consume it for free.
//!
//! ```sh
//! cargo run --release --example characterization_db
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

use stash::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 1 (the paper's role): characterize a model across the catalog
    // and publish the database.
    let mut db = CharacterizationDb::new();
    let stash = Stash::new(zoo::resnet18())
        .with_batch(32)
        .with_sampled_iterations(6);
    for cluster in default_candidates() {
        match stash.profile(&cluster) {
            Ok(report) => {
                db.insert(report);
            }
            Err(e) => println!("skipping {}: {e}", cluster.display_name()),
        }
    }
    let path = PathBuf::from("results/characterization_db.json");
    db.save(&path)?;
    println!(
        "published {} characterizations to {}\n",
        db.len(),
        path.display()
    );

    // Phase 2 (the tenant's role): load the published database and make a
    // decision without renting a single VM.
    let published = CharacterizationDb::load(&path)?;
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "cluster", "I/C %", "N/W %", "CPU %", "disk %"
    );
    for r in published.for_model("ResNet18") {
        let p = |v: Option<f64>| v.map_or("-".into(), |x| format!("{x:.1}"));
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}",
            r.cluster,
            p(r.interconnect_stall_pct()),
            p(r.network_stall_pct()),
            p(r.cpu_stall_pct()),
            p(r.disk_stall_pct()),
        );
    }
    let best = published.fastest_for("ResNet18").expect("db has entries");
    println!(
        "\n=> fastest published configuration: {} ({} per warm epoch) — zero profiling cost to you",
        best.cluster,
        best.training_epoch_time().expect("timed")
    );
    Ok(())
}
