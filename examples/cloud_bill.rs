//! Cloud bill: what a full training run costs across the P2/P3 families
//! (the paper's Fig. 14 comparison, extended to whole training runs).
//!
//! ```sh
//! cargo run --release --example cloud_bill -- [epochs]
//! ```

use stash::prelude::*;

fn main() -> Result<(), ProfileError> {
    let epochs: u64 = std::env::args()
        .nth(1)
        .and_then(|e| e.parse().ok())
        .unwrap_or(90); // a conventional ImageNet schedule

    let clusters = [
        ClusterSpec::single(p2_8xlarge()),
        ClusterSpec::single(p2_16xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::single(p3_16xlarge()),
    ];
    let models = [
        zoo::shufflenet(),
        zoo::mobilenet_v2(),
        zoo::resnet18(),
        zoo::resnet50(),
    ];

    println!("billing a {epochs}-epoch ImageNet run\n");
    println!(
        "{:<14} {:<14} {:>12} {:>12} {:>12}",
        "model", "cluster", "epoch", "epoch $", "run $"
    );
    for model in &models {
        let stash = Stash::new(model.clone())
            .with_batch(32)
            .with_sampled_iterations(8);
        let mut rows = Vec::new();
        for cluster in &clusters {
            match stash.profile(cluster) {
                Ok(report) => {
                    let bill = epoch_cost(&report, cluster);
                    rows.push((cluster.display_name(), bill));
                }
                Err(ProfileError::Train(TrainError::OutOfMemory { .. })) => {
                    println!(
                        "{:<14} {:<14} does not fit",
                        model.name,
                        cluster.display_name()
                    );
                }
                Err(e) => return Err(e),
            }
        }
        for (name, bill) in &rows {
            println!(
                "{:<14} {:<14} {:>12} {:>12.2} {:>12.2}",
                model.name,
                name,
                bill.epoch_time.to_string(),
                bill.epoch_cost,
                training_cost(bill, epochs)
            );
        }
        // The paper's §V-C observation: P3 usually wins on cost despite a
        // 3.5x higher hourly price — except for tiny models.
        if let (Some(best), Some(worst)) = (
            rows.iter()
                .min_by(|a, b| a.1.epoch_cost.total_cmp(&b.1.epoch_cost)),
            rows.iter()
                .max_by(|a, b| a.1.epoch_cost.total_cmp(&b.1.epoch_cost)),
        ) {
            println!(
                "  -> cheapest: {} (saves {:.0}% vs {})\n",
                best.0,
                100.0 * (1.0 - best.1.epoch_cost / worst.1.epoch_cost),
                worst.0
            );
        }
    }
    Ok(())
}
