//! Quickstart: profile one model on one instance and print the stall
//! report — the 30-second tour of the Stash API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stash::prelude::*;

fn main() -> Result<(), ProfileError> {
    // ResNet18 on ImageNet with the paper's default batch size.
    let stash = Stash::new(zoo::resnet18()).with_batch(32);

    // Characterize a p3.16xlarge (8x V100 behind a full NVLink crossbar).
    let cluster = ClusterSpec::single(p3_16xlarge());
    let report = stash.profile(&cluster)?;
    println!("{report}");

    // The same instance family, split across the network.
    let split = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let split_report = stash.profile(&split)?;
    println!("{split_report}");

    // Headline takeaway of the paper: as soon as the all-reduce ring
    // contains a network link, training is throttled on it.
    let nw = split_report.network_stall_pct().unwrap_or(0.0);
    println!(
        "=> moving from one p3.16xlarge to two networked p3.8xlarge adds {nw:.0}% network stall"
    );

    // And what it costs.
    let bill = epoch_cost(&report, &cluster);
    println!(
        "=> one ImageNet epoch on {} takes {} and costs ${:.2}",
        bill.cluster, bill.epoch_time, bill.epoch_cost
    );
    Ok(())
}
