//! The QoS lottery: what the paper's §III network-variance warning means
//! for your training bill.
//!
//! Draws the achieved network bandwidth of a 2x p3.8xlarge pair from a
//! jittered distribution (as tenants experience across zones and months)
//! and reports how widely the network stall — and therefore the epoch
//! cost — swings.
//!
//! ```sh
//! cargo run --release --example qos_lottery -- [jitter] [trials]
//! ```

use stash::prelude::*;

fn main() -> Result<(), ProfileError> {
    let mut args = std::env::args().skip(1);
    let jitter: f64 = args.next().and_then(|j| j.parse().ok()).unwrap_or(0.5);
    let trials: u32 = args.next().and_then(|t| t.parse().ok()).unwrap_or(8);

    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let stash = Stash::new(zoo::resnet50())
        .with_batch(32)
        .with_sampled_iterations(8);

    println!(
        "drawing {trials} tenants; each achieves between {:.0}% and 100% of nominal bandwidth\n",
        (1.0 - jitter) * 100.0
    );
    let dist = network_stall_distribution(&stash, &cluster, jitter, trials, 0xC10D)?;
    println!("{:>10} {:>14}", "achieved", "N/W stall %");
    for s in &dist.samples {
        println!(
            "{:>9.0}% {:>14.1}",
            s.achieved_fraction * 100.0,
            s.network_stall_pct
        );
    }
    println!(
        "\nstall: mean {:.0}%, stddev {:.0}%, spread {:.1}x (min {:.0}%, max {:.0}%)",
        dist.stall_summary.mean(),
        dist.stall_summary.std_dev(),
        dist.spread(),
        dist.stall_summary.min().unwrap_or(0.0),
        dist.stall_summary.max().unwrap_or(0.0),
    );
    println!(
        "=> the same cluster, model and code can stall {:.1}x differently purely by QoS luck —",
        dist.spread()
    );
    println!(
        "   which is why Stash characterizes hardware stalls and treats the network statistically."
    );
    Ok(())
}
