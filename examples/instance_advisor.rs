//! Instance advisor: sweep the AWS P2/P3 catalog for a model and print a
//! ranked time/cost table — the paper's per-section "Recommendation"
//! paragraphs, automated for *your* model.
//!
//! ```sh
//! cargo run --release --example instance_advisor -- [model] [batch]
//! # e.g.
//! cargo run --release --example instance_advisor -- vgg11 32
//! ```

use stash::prelude::*;

fn main() -> Result<(), ProfileError> {
    let mut args = std::env::args().skip(1);
    let model_name = args.next().unwrap_or_else(|| "resnet18".into());
    let batch: u64 = args.next().and_then(|b| b.parse().ok()).unwrap_or(32);
    let model = zoo::by_name(&model_name).unwrap_or_else(|| {
        eprintln!("unknown model '{model_name}', using ResNet18");
        zoo::resnet18()
    });
    let dataset = if model.name == "BERT-large" {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };

    println!("advising for {} at per-GPU batch {batch}\n", model.name);
    let stash = Stash::new(model)
        .with_batch(batch)
        .with_dataset(dataset)
        .with_sampled_iterations(10);

    for objective in [Objective::Time, Objective::Cost] {
        let advice = recommend(&stash, &default_candidates(), objective)?;
        println!("ranked by {objective:?}:");
        println!(
            "  {:<16} {:>12} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "cluster", "epoch", "cost $", "I/C %", "N/W %", "CPU %", "disk %"
        );
        for r in &advice.ranked {
            let pct = |p: Option<f64>| p.map_or("-".into(), |v| format!("{v:.1}"));
            println!(
                "  {:<16} {:>12} {:>10.2} {:>8} {:>8} {:>8} {:>8}",
                r.cluster_name,
                r.cost.epoch_time.to_string(),
                r.cost.epoch_cost,
                pct(r.report.interconnect_stall_pct()),
                pct(r.report.network_stall_pct()),
                pct(r.report.cpu_stall_pct()),
                pct(r.report.disk_stall_pct()),
            );
        }
        for s in &advice.skipped {
            println!("  {:<16} skipped: {}", s.cluster_name, s.reason);
        }
        println!();
    }
    Ok(())
}
