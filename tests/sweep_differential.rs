//! Differential gates for the durable sweep CLI: routing a sweep through
//! the result store — with or without injected I/O faults — must change
//! nothing about the results. Storeless, stored, fault-injected and
//! resumed runs of the same grid agree byte-for-byte on every value;
//! only the status column may tell the runs apart.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;
use std::process::Command;

fn stash(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stash"))
        .args(args)
        .output()
        .expect("run stash binary")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stash_sweepdiff_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sweep_grid(extra: &[&str]) -> std::process::Output {
    let mut args = vec![
        "sweep",
        "--models",
        "AlexNet,ResNet18",
        "--clusters",
        "p3.2xlarge,p3.8xlarge",
    ];
    args.extend_from_slice(extra);
    stash(&args)
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap()
}

fn strip_status(csv: &str) -> String {
    csv.lines()
        .map(|l| l.rsplit_once(',').map_or(l, |(head, _)| head).to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn storeless_stored_and_faulted_sweeps_are_bit_identical() {
    let dir = scratch("diff");
    let a = dir.join("storeless.csv");
    let b = dir.join("stored.csv");
    let c = dir.join("faulted.csv");
    let store_b = dir.join("store_b");
    let store_c = dir.join("store_c");

    let out = sweep_grid(&["--out", a.to_str().unwrap()]);
    assert!(out.status.success(), "storeless sweep failed: {out:?}");

    let out = sweep_grid(&[
        "--store",
        store_b.to_str().unwrap(),
        "--out",
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stored sweep failed: {out:?}");

    // Seeded recoverable faults (torn write, short read, EIO, ENOSPC):
    // the retry/quarantine machinery must absorb all of them.
    let out = sweep_grid(&[
        "--store",
        store_c.to_str().unwrap(),
        "--io-fault-seed",
        "42",
        "--out",
        c.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "faulted sweep failed: {out:?}");

    // All three CSVs are byte-identical — same cells, same values, and
    // every cell computed in-run.
    let (ta, tb, tc) = (read(&a), read(&b), read(&c));
    assert_eq!(ta, tb, "store routing changed the results");
    assert_eq!(tb, tc, "injected faults changed the results");
    assert!(ta.lines().skip(1).all(|l| l.ends_with(",computed")));

    // The two stores hold byte-identical records under identical names.
    let list = |store: &Path| -> Vec<(String, Vec<u8>)> {
        let mut v: Vec<_> = std::fs::read_dir(store.join("records"))
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(&p).unwrap(),
                )
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(list(&store_b), list(&store_c));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_sweep_serves_every_cell_from_the_store() {
    let dir = scratch("resume");
    let cold = dir.join("cold.csv");
    let warm = dir.join("warm.csv");
    let store = dir.join("store");

    let out = sweep_grid(&[
        "--store",
        store.to_str().unwrap(),
        "--out",
        cold.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "cold sweep failed: {out:?}");

    // Resume with no grid flags: the journal carries the intent.
    let out = stash(&[
        "sweep",
        "--store",
        store.to_str().unwrap(),
        "--resume",
        "--out",
        warm.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "resume failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("0 computed, 4 resumed, 0 failed"),
        "{stdout}"
    );

    let (tc, tw) = (read(&cold), read(&warm));
    assert_eq!(strip_status(&tc), strip_status(&tw));
    assert!(tw.lines().skip(1).all(|l| l.ends_with(",resumed")));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_cells_degrade_gracefully_with_exit_class_2() {
    let dir = scratch("degrade");
    let csv = dir.join("partial.csv");

    // p3.16xlarge*3 has no single-instance reference measurement, so its
    // cell fails with a typed profile error; the healthy cell still runs.
    let out = stash(&[
        "sweep",
        "--models",
        "AlexNet",
        "--clusters",
        "p3.16xlarge*3,p3.2xlarge",
        "--out",
        csv.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "want exit class 2: {out:?}");

    let text = read(&csv);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "header + one row per cell:\n{text}");
    assert!(lines[1].starts_with("p3.16xlarge*3,AlexNet,"));
    assert!(lines[1].ends_with(",profile-error"), "{}", lines[1]);
    assert!(lines[2].ends_with(",computed"), "{}", lines[2]);

    let _ = std::fs::remove_dir_all(&dir);
}
