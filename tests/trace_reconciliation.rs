//! The standing correctness oracle: per-category traced span totals must
//! reconcile with `EpochReport`'s stall breakdown at integer-nanosecond
//! exactness, for every model in the zoo on two instance generations.
//!
//! The engine accumulates rank-0 compute/data-wait/comm-wait and then
//! extrapolates by `iterations / simulated_iterations` via the same
//! `SimDuration::mul_f64` the report uses — so summing the raw rank-0
//! spans per category and applying the identical scaling must land on
//! the report's fields exactly, not approximately.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::rc::Rc;

use stash::prelude::*;

fn traced_cfg(model: Model, inst: InstanceType) -> TrainConfig {
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    let mut cfg = TrainConfig::synthetic(ClusterSpec::single(inst), model, 4, 4 * 3);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 3 };
    cfg.data = DataMode::Real {
        dataset,
        cache: CacheState::Warm,
    };
    cfg
}

#[test]
fn span_totals_reconcile_with_stall_breakdown_for_every_zoo_model() {
    for inst in [p2_16xlarge(), p3_16xlarge()] {
        for (model, _) in zoo::all_models() {
            let cfg = traced_cfg(model, inst.clone());
            let name = format!("{} on {}", cfg.model.name, inst.name);

            let sink = Rc::new(RefCell::new(JsonSink::new()));
            let tracer = shared(Tracer::new(sink.clone()));
            let report = run_epoch_traced(&cfg, &tracer).unwrap_or_else(|e| panic!("{name}: {e}"));

            let events = sink.borrow().events().to_vec();
            let rollup = StallRollup::from_events(&events);
            let rank0 = Track::gpu(0, 0);
            let factor = report.iterations as f64 / report.simulated_iterations as f64;

            let compute = rollup.track_total(rank0, Category::Compute).mul_f64(factor);
            assert_eq!(
                compute, report.compute_time,
                "{name}: compute spans do not reconcile"
            );

            let data = rollup.track_total(rank0, Category::Fetch).mul_f64(factor);
            assert_eq!(
                data, report.data_wait,
                "{name}: fetch spans do not reconcile"
            );

            // Single-instance runs stall on the intra-node interconnect;
            // multi-node runs would stall on the network. Sum both so the
            // oracle holds regardless of topology.
            let comm_raw = rollup.track_total(rank0, Category::Interconnect)
                + rollup.track_total(rank0, Category::Network);
            let comm = comm_raw.mul_f64(factor);
            assert_eq!(
                comm, report.comm_wait,
                "{name}: comm spans do not reconcile"
            );
        }
    }
}

#[test]
fn reconciliation_holds_on_a_multi_node_cluster() {
    // Two p3.8xlarge nodes: all-reduce stalls classify as Network, and
    // the oracle must still balance.
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        zoo::resnet18(),
        4,
        4 * 3,
    );
    cfg.epoch_mode = EpochMode::Sampled { iterations: 3 };

    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    let report = run_epoch_traced(&cfg, &tracer).expect("multi-node traced run");

    let events = sink.borrow().events().to_vec();
    let rollup = StallRollup::from_events(&events);
    let rank0 = Track::gpu(0, 0);
    let factor = report.iterations as f64 / report.simulated_iterations as f64;

    assert_eq!(
        rollup.track_total(rank0, Category::Compute).mul_f64(factor),
        report.compute_time
    );
    let comm_raw = rollup.track_total(rank0, Category::Interconnect)
        + rollup.track_total(rank0, Category::Network);
    assert_eq!(comm_raw.mul_f64(factor), report.comm_wait);
    assert!(
        rollup.kind_totals().iter().any(|(k, c, t)| {
            *k == TrackKind::Comm && *c == Category::Network && t.as_nanos() > 0
        }),
        "multi-node all-reduce buckets should be categorized as Network"
    );
}
