//! Differential test: tracing must be an observer, never a participant.
//!
//! For every model in the zoo, on one P2 and one P3 instance, an epoch
//! run with a live tracer attached must produce an `EpochReport` that is
//! bit-identical (every field, compared through its JSON serialization)
//! to the untraced run — and the sink must actually have seen events, so
//! the comparison is not vacuous.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::rc::Rc;

use serde::Serialize as _;
use stash::prelude::*;

fn traced_cfg(model: Model, inst: InstanceType) -> TrainConfig {
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    let mut cfg = TrainConfig::synthetic(ClusterSpec::single(inst), model, 4, 4 * 3);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 3 };
    cfg.data = DataMode::Real {
        dataset,
        cache: CacheState::Warm,
    };
    cfg
}

#[test]
fn traced_run_is_bit_identical_for_every_zoo_model() {
    for inst in [p2_16xlarge(), p3_16xlarge()] {
        for (model, _) in zoo::all_models() {
            let cfg = traced_cfg(model, inst.clone());
            let name = format!("{} on {}", cfg.model.name, inst.name);

            let plain = run_epoch(&cfg).unwrap_or_else(|e| panic!("{name}: untraced: {e}"));
            let sink = Rc::new(RefCell::new(CountingSink::new()));
            let tracer = shared(Tracer::new(sink.clone()));
            let traced =
                run_epoch_traced(&cfg, &tracer).unwrap_or_else(|e| panic!("{name}: traced: {e}"));

            assert_eq!(
                plain.to_json_value(),
                traced.to_json_value(),
                "{name}: traced report diverged from untraced"
            );
            assert!(
                sink.borrow().spans() > 0,
                "{name}: counting-sink harness saw no spans — comparison is vacuous"
            );
        }
    }
}

#[test]
fn null_sink_changes_no_report_bits() {
    // `NullSink` is the "tracing compiled in but pointed at /dev/null"
    // configuration: events are emitted and dropped. The report must not
    // change by a single bit relative to the fully-untraced run.
    let cfg = traced_cfg(zoo::resnet18(), p3_16xlarge());
    let plain = run_epoch(&cfg).expect("untraced run");

    let tracer = shared(Tracer::new(NullSink));
    let traced = run_epoch_traced(&cfg, &tracer).expect("null-sink run");
    assert!(
        tracer.borrow().events_emitted() > 0,
        "NullSink tracer is live"
    );
    assert_eq!(plain.to_json_value(), traced.to_json_value());
}
