//! Property-based tests of the telemetry registry and its serializers:
//! the log2 histogram's accounting identities hold for arbitrary inputs,
//! and snapshots of identical recorded state serialize byte-identically
//! (JSON and Prometheus both), which is what makes telemetry artifacts
//! diffable in CI.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use stash::telemetry::registry::{
    bucket_index, bucket_quantile, bucket_upper_bound, Histogram, BUCKETS,
};
use stash::telemetry::snapshot::Snapshot;

proptest! {
    /// Every value lands in exactly one bucket, so bucket counts always
    /// sum to the total count, and `sum` tracks the (wrapping) value sum.
    #[test]
    fn histogram_buckets_sum_to_count(values in prop::collection::vec(any::<u64>(), 0..300)) {
        let h = Histogram::new();
        let mut expected_sum = 0u64;
        for &v in &values {
            h.observe(v);
            expected_sum = expected_sum.wrapping_add(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), values.len() as u64);
        prop_assert_eq!(h.sum(), expected_sum);
    }

    /// A value is never larger than its bucket's upper bound, and always
    /// larger than the previous bucket's — the bucketing loses precision
    /// but never misplaces.
    #[test]
    fn bucket_bounds_bracket_every_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(v <= bucket_upper_bound(i));
        if i > 0 {
            prop_assert!(v > bucket_upper_bound(i - 1));
        }
    }

    /// Quantiles are monotone in `q` and bounded by the extreme buckets'
    /// upper bounds.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let b = h.buckets();
        let n = h.count();
        let mut last = bucket_quantile(&b, n, 0.0);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let cur = bucket_quantile(&b, n, q);
            prop_assert!(cur >= last, "quantile({q}) regressed: {cur} < {last}");
            last = cur;
        }
        let max = values.iter().copied().max().unwrap_or(0);
        prop_assert!(last >= max, "q=1.0 bound {last} below max value {max}");
    }

    /// Identical recorded state serializes byte-identically, in both the
    /// JSON document and the Prometheus exposition — and the exposition
    /// always passes the strict validator.
    #[test]
    fn snapshots_serialize_byte_identically(
        counters in prop::collection::vec(any::<u64>(), 1..20),
        values in prop::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        // Build two snapshots from the same logical state via independent
        // local histograms, never touching the process-global registry
        // (tests in this binary run in parallel).
        let build = || {
            let h = Histogram::new();
            for &v in &values {
                h.observe(v);
            }
            let mut s = Snapshot::zero();
            for (slot, &v) in s.counters.iter_mut().zip(counters.iter()) {
                slot.1 = v;
            }
            s.histograms[0].1.count = h.count();
            s.histograms[0].1.sum = h.sum();
            s.histograms[0].1.buckets = h.buckets();
            s
        };
        let (a, b) = (build(), build());

        let ja = serde_json::to_string_pretty(&a.to_json("instance", "prop test")).unwrap();
        let jb = serde_json::to_string_pretty(&b.to_json("instance", "prop test")).unwrap();
        prop_assert_eq!(ja, jb);

        let pa = a.render_prom();
        let pb = b.render_prom();
        prop_assert_eq!(&pa, &pb);
        stash::telemetry::prom::validate(&pa).unwrap();
    }
}
