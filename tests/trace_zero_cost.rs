//! Zero-cost-when-disabled, measured: an epoch run with tracing
//! disabled must perform exactly as many heap allocations as a run with
//! no tracer at all, and must never construct a single event.
//!
//! This file holds exactly one test so the global counting allocator is
//! not polluted by concurrent tests in the same binary.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use stash::prelude::*;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Count only while the measuring thread says so: the libtest harness
// thread blocks in `recv()` for the duration of the test and can lazily
// allocate its parker mid-window, which used to land ±2 allocations in
// a random measured region and flake the exact-equality assertions.
std::thread_local! {
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let value = f();
    MEASURING.with(|m| m.set(false));
    (value, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

#[test]
fn disabled_tracer_allocates_exactly_nothing_extra() {
    let mut cfg =
        TrainConfig::synthetic(ClusterSpec::single(p3_8xlarge()), zoo::alexnet(), 8, 8 * 2);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 2 };

    // Warm up both code paths once (lazy one-time allocations).
    let warm_tracer = shared(Tracer::disabled());
    run_epoch(&cfg).expect("warmup untraced");
    run_epoch_traced(&cfg, &warm_tracer).expect("warmup traced-disabled");

    let (plain, plain_allocs) = allocations_during(|| run_epoch(&cfg).expect("untraced"));

    let tracer = shared(Tracer::disabled());
    let (traced, traced_allocs) =
        allocations_during(|| run_epoch_traced(&cfg, &tracer).expect("traced-disabled"));

    assert_eq!(
        plain_allocs, traced_allocs,
        "a disabled tracer must not change the allocation profile"
    );
    assert_eq!(
        tracer.borrow().events_emitted(),
        0,
        "disabled tracer emitted events"
    );
    assert_eq!(plain.epoch_time, traced.epoch_time);
    assert_eq!(plain.compute_time, traced.compute_time);
    assert_eq!(plain.data_wait, traced.data_wait);
    assert_eq!(plain.comm_wait, traced.comm_wait);
}
