//! Conservation and consistency properties across the whole stack,
//! exercised with randomly generated models (proptest).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use stash::prelude::*;

/// Strategy: a random but well-formed CNN-ish model.
fn arb_model() -> impl Strategy<Value = Model> {
    (2_usize..20, 8_u64..64, 1_u64..4).prop_map(|(depth, width, fc_k)| {
        let mut layers = Vec::new();
        let mut c_in = 3_u64;
        let mut hw = 64_u64;
        for i in 0..depth {
            let c_out = width * (1 + (i as u64 % 4));
            layers.push(Layer::conv2d(format!("c{i}"), c_in, hw, hw, c_out, 3, 1));
            layers.push(Layer::batch_norm(format!("b{i}"), c_out, hw, hw));
            layers.push(Layer::activation(format!("r{i}"), c_out * hw * hw));
            if i % 3 == 2 && hw > 4 {
                layers.push(Layer::pool(format!("p{i}"), c_out, hw, hw, 2));
                hw /= 2;
            }
            c_in = c_out;
        }
        layers.push(Layer::linear("fc", c_in * hw * hw, 100 * fc_k));
        Model::new("rand", layers, 3.0 * 64.0 * 64.0 * 4.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bucket plans conserve gradient bytes and partition layers for any
    /// generated model under both bucketing policies.
    #[test]
    fn bucketing_conserves_random_models(model in arb_model(), cap_mb in 1.0_f64..32.0) {
        for bucketing in [Bucketing::PerLayer, Bucketing::BySize { bytes: cap_mb * 1e6 }] {
            let plan = CommPlan::new(&model, bucketing);
            prop_assert!((plan.total_bytes() - model.gradient_bytes()).abs() < 1.0);
            let covered: usize = plan.buckets.iter().map(|b| b.layer_range.1 - b.layer_range.0).sum();
            prop_assert_eq!(covered, model.layer_count());
        }
    }

    /// Single-GPU engine time equals the closed-form compute model for any
    /// generated model (no communication, no data pipeline).
    #[test]
    fn engine_matches_compute_model_on_one_gpu(model in arb_model(), batch in 1_u64..32) {
        let cluster = ClusterSpec::single(p3_2xlarge());
        let cm = ComputeModel::new(GpuModel::V100.spec());
        if !memory::fits(cm.gpu(), &model, batch) {
            return Ok(()); // skip infeasible draws
        }
        let mut cfg = TrainConfig::synthetic(cluster, model.clone(), batch, batch * 3);
        cfg.epoch_mode = EpochMode::Full;
        let report = run_epoch(&cfg).unwrap();
        let expected = cm.iteration_time(&model, batch).as_secs_f64() * 3.0;
        let got = report.epoch_time.as_secs_f64();
        prop_assert!(((got - expected) / expected).abs() < 1e-6, "engine {} vs model {}", got, expected);
    }

    /// Distributing any generated model can only slow down per-sample
    /// progress relative to the ideal (communication is never free), and
    /// comm_wait is bounded by the epoch.
    #[test]
    fn distribution_never_beats_the_ideal(model in arb_model()) {
        let batch = 8_u64;
        let cluster = ClusterSpec::single(p3_8xlarge());
        let cm = ComputeModel::new(GpuModel::V100.spec());
        if !memory::fits(cm.gpu(), &model, batch) {
            return Ok(());
        }
        let mut cfg = TrainConfig::synthetic(cluster, model.clone(), batch, batch * 3);
        cfg.epoch_mode = EpochMode::Full;
        let report = run_epoch(&cfg).unwrap();
        let ideal = cm.iteration_time(&model, batch).as_secs_f64() * 3.0;
        prop_assert!(report.epoch_time.as_secs_f64() >= ideal * 0.999);
        prop_assert!(report.comm_wait <= report.epoch_time);
    }

    /// The memory estimate is monotone in batch size for any model.
    #[test]
    fn memory_monotone_in_batch(model in arb_model(), b in 1_u64..64) {
        let small = memory::estimate(&model, b).total();
        let large = memory::estimate(&model, b + 1).total();
        prop_assert!(large >= small);
    }
}
