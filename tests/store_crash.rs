//! Crash-resume integration test: a sweep process is killed dead (no
//! cleanup, no destructors) while a record write is mid-flight, leaving
//! a torn record and a half-finished journal behind. A fresh process
//! resuming that store must converge to records byte-identical to a run
//! that was never interrupted — the paper's pay-once economics made
//! crash-safe.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::Path;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

use stash::store::prelude::{IoFault, IoFaultKind, IoFaultPlan, IoOpClass};

fn stash(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stash"))
        .args(args)
        .output()
        .expect("run stash binary")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("stash_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every record file in a store, keyed by filename.
fn records(store: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(store.join("records")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "rec") {
            out.insert(
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&path).unwrap(),
            );
        }
    }
    out
}

/// A CSV with the trailing status column dropped from every line, so
/// computed and resumed runs of the same cells compare equal.
fn strip_status(csv: &str) -> String {
    csv.lines()
        .map(|l| l.rsplit_once(',').map_or(l, |(head, _)| head).to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

const GRID: [&str; 6] = [
    "--models",
    "AlexNet,ResNet18,ShuffleNet",
    "--clusters",
    "p3.2xlarge",
    "-b",
    "32",
];

#[test]
fn sigkill_mid_write_then_resume_converges_to_identical_bytes() {
    let dir = scratch("kill");
    let ref_store = dir.join("reference");
    let crash_store = dir.join("crashed");

    // The uninterrupted reference run.
    let ref_csv = dir.join("reference.csv");
    let out = stash(
        &[
            &[
                "sweep",
                "--store",
                ref_store.to_str().unwrap(),
                "--out",
                ref_csv.to_str().unwrap(),
            ],
            &GRID[..],
        ]
        .concat(),
    );
    assert!(out.status.success(), "reference sweep failed: {out:?}");

    // A fault plan that stalls the process forever inside the *second*
    // record write, after a short prefix reached the final path — the
    // torn-write state a power cut leaves behind. The stall prints a
    // marker line, which is our cue to SIGKILL the child.
    let plan = IoFaultPlan {
        faults: vec![IoFault {
            op: IoOpClass::Write,
            index: 1,
            kind: IoFaultKind::StallMidWrite { keep: 9 },
        }],
    };
    let plan_path = dir.join("stall_plan.json");
    std::fs::write(&plan_path, plan.to_json()).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_stash"))
        .args(
            &[
                &[
                    "sweep",
                    "--store",
                    crash_store.to_str().unwrap(),
                    "--io-fault-plan",
                    plan_path.to_str().unwrap(),
                ],
                &GRID[..],
            ]
            .concat(),
        )
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sweep child");

    let stdout = child.stdout.take().unwrap();
    let (tx, rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if line.contains("stalled mid-write") {
                let _ = tx.send(());
                return;
            }
        }
    });
    if rx.recv_timeout(Duration::from_secs(120)).is_err() {
        let _ = child.kill();
        panic!("sweep child never reached the planned stall point");
    }
    child.kill().expect("kill stalled child");
    child.wait().unwrap();
    reader.join().unwrap();

    // The kill left a mess: fewer intact records than the reference, and
    // the in-flight record torn to its 9-byte prefix.
    let crashed = records(&crash_store);
    let reference = records(&ref_store);
    assert_eq!(reference.len(), 3, "reference run should store every cell");
    assert!(
        crashed.len() < reference.len() || crashed.values().any(|b| b.len() < 20),
        "the crash should have left an incomplete store"
    );
    assert!(
        crashed.values().any(|bytes| bytes.len() == 9),
        "expected the torn 9-byte record prefix, got lengths {:?}",
        crashed.values().map(Vec::len).collect::<Vec<_>>()
    );

    // A fresh process resumes the store — no fault plan, no grid flags:
    // the journaled write-ahead plans carry the full intent.
    let resumed_csv = dir.join("resumed.csv");
    let out = stash(&[
        "sweep",
        "--store",
        crash_store.to_str().unwrap(),
        "--resume",
        "--out",
        resumed_csv.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "resume failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("resuming 3 journaled cell(s)"),
        "resume should recover the whole planned grid:\n{stdout}"
    );

    // Convergence: the resumed store is byte-identical to the
    // uninterrupted one, record for record.
    assert_eq!(records(&crash_store), reference);

    // The torn record's corpse was quarantined, not destroyed.
    let quarantine: Vec<_> = std::fs::read_dir(crash_store.join("quarantine"))
        .unwrap()
        .collect();
    assert!(!quarantine.is_empty(), "torn record should be quarantined");

    // And the results CSVs agree on every value; only the status column
    // (computed vs resumed) may differ.
    let ref_text = std::fs::read_to_string(&ref_csv).unwrap();
    let res_text = std::fs::read_to_string(&resumed_csv).unwrap();
    assert_eq!(strip_status(&ref_text), strip_status(&res_text));
    assert!(res_text.contains(",resumed"), "intact cell should resume");
    assert!(res_text.contains(",computed"), "torn cell should recompute");

    let _ = std::fs::remove_dir_all(&dir);
}
