//! The telemetry cost model, proven with a counting allocator:
//!
//! 1. a *disabled* record call never allocates (it is one relaxed load);
//! 2. an *enabled* record call never allocates either (atomics only —
//!    allocation happens exclusively at snapshot time);
//! 3. the engine's steady-state zero-allocation guarantee (see
//!    `tests/alloc_budget.rs`) survives with telemetry switched on.
//!
//! This file holds exactly one test so the global counting allocator is
//! not polluted by concurrent tests in the same binary.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use stash::ddl::engine::EngineArena;
use stash::prelude::*;
use stash::telemetry::metrics;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Count only while the measuring thread says so: the libtest harness
// thread blocks in `recv()` for the duration of the test and can lazily
// allocate its parker mid-window, which used to land ±2 allocations in
// a random measured region and flake the exact-equality assertions.
std::thread_local! {
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let value = f();
    MEASURING.with(|m| m.set(false));
    (value, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

fn hammer_registry() {
    for i in 0..10_000_u64 {
        metrics::QUEUE_PUSHED.inc();
        metrics::SOLVER_ROUNDS.add(3);
        metrics::QUEUE_DEPTH_HIGH_WATER.record_max(i);
        metrics::SOLVER_RECOMPUTE_LATENCY_NS.record(i * 17);
    }
}

#[test]
fn telemetry_records_allocate_exactly_nothing() {
    // --- 1. disabled records are free ---------------------------------
    stash::telemetry::disable();
    let ((), off_allocs) = allocations_during(hammer_registry);
    assert_eq!(off_allocs, 0, "disabled record calls allocated");

    // --- 2. enabled records are atomics only --------------------------
    stash::telemetry::enable();
    let ((), on_allocs) = allocations_during(hammer_registry);
    assert_eq!(on_allocs, 0, "enabled record calls allocated");

    // --- 3. the engine's steady-state gate holds with telemetry on ----
    // Same shape as tests/alloc_budget.rs: N vs 2N warm iterations in a
    // reused arena must allocate identically; any per-iteration telemetry
    // allocation would show up in the longer run. Synthetic data (no
    // loader transfers) and fast-forward off, so every extra iteration is
    // simulated event by event through the instrumented queue and solver.
    let mk = |iters: u64| {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_8xlarge()),
            zoo::alexnet(),
            8,
            8 * 128,
        );
        cfg.epoch_mode = EpochMode::Sampled { iterations: iters };
        cfg
    };
    let options = stash::ddl::engine::EngineOptions {
        fast_forward: false,
    };
    let run = |arena: &mut EngineArena, iters: u64| {
        let cfg = mk(iters);
        allocations_during(|| {
            stash::ddl::engine::run_epoch_in_with(&cfg, &options, arena).expect("epoch")
        })
    };

    let mut arena = EngineArena::new();
    run(&mut arena, 64);
    run(&mut arena, 64);
    let (_, short_allocs) = run(&mut arena, 64);
    let (_, long_allocs) = run(&mut arena, 128);
    stash::telemetry::disable();

    assert_eq!(
        short_allocs, long_allocs,
        "with telemetry enabled, 64 extra steady-state iterations changed \
         the allocation count (short run {short_allocs}, long run {long_allocs})"
    );

    // Sanity: the hammering and the engine runs really recorded.
    let snap = stash::telemetry::snapshot::Snapshot::take();
    assert!(snap.counter("stash_sim_queue_events_pushed_total") >= 10_000);
    assert!(snap.counter("stash_sim_epochs_total") >= 4);
}
