//! Fault injection must be a strict superset of the fault-free engine:
//! with an empty [`FaultPlan`] every [`EpochReport`] bit matches the
//! plain entry points (fast-forward on and off, synthetic and real data,
//! static stragglers included), seeded plans are run-to-run
//! deterministic, and on factor-1 runs the faulted accumulators tile the
//! wall clock at integer-nanosecond exactness.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::rc::Rc;

use stash::ddl::engine::{
    run_epoch_faulted_traced, run_epoch_faulted_with, run_epoch_with, EngineOptions,
};
use stash::prelude::*;

fn clusters() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p2_16xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
    ]
}

fn assert_identical(cfg: &TrainConfig, what: &str) {
    for fast_forward in [false, true] {
        let options = EngineOptions { fast_forward };
        let plain = run_epoch_with(cfg, &options).expect("plain epoch");
        let faulted =
            run_epoch_faulted_with(cfg, &FaultPlan::empty(), &options).expect("faulted epoch");
        assert_eq!(
            plain, faulted.report,
            "empty plan drifted for {what} (fast_forward={fast_forward})"
        );
        assert_eq!(
            faulted.faults,
            FaultOutcome::default(),
            "empty plan produced fault observations for {what}"
        );
    }
}

#[test]
fn empty_plan_is_bit_identical_across_the_zoo() {
    for cluster in clusters() {
        for model in zoo::small_models() {
            let name = model.name.clone();
            let mut cfg = TrainConfig::synthetic(cluster.clone(), model, 32, 32 * 64);
            cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
            assert_identical(&cfg, &format!("{name} on {}", cluster.display_name()));
        }
    }
}

#[test]
fn empty_plan_is_bit_identical_with_real_data_and_static_straggler() {
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::single(p3_16xlarge()),
        zoo::resnet18(),
        32,
        32 * 64,
    );
    cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
    cfg.data = DataMode::Real {
        dataset: DatasetSpec::imagenet1k(),
        cache: CacheState::Warm,
    };
    assert_identical(&cfg, "real-data resnet18");

    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::single(p3_16xlarge()),
        zoo::resnet18(),
        32,
        32 * 64,
    );
    cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
    cfg.straggler = Some(Straggler {
        rank: 3,
        slowdown: 1.7,
    });
    assert_identical(&cfg, "static-straggler resnet18");
}

#[test]
fn seeded_plans_are_deterministic_across_runs_and_fast_forward() {
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        zoo::resnet18(),
        32,
        32 * 16,
    );
    cfg.epoch_mode = EpochMode::Full;
    let base = run_epoch(&cfg).expect("baseline");
    for seed in [1, 7, 23] {
        let plan = FaultPlan::seeded(seed, cfg.cluster.world_size(), 2, base.epoch_time);
        let a = run_epoch_faulted(&cfg, &plan).expect("a");
        let b = run_epoch_faulted(&cfg, &plan).expect("b");
        assert_eq!(a, b, "seed {seed} not deterministic");
        let no_ff = run_epoch_faulted_with(
            &cfg,
            &plan,
            &EngineOptions {
                fast_forward: false,
            },
        )
        .expect("no ff");
        assert_eq!(a, no_ff, "seed {seed} drifted across fast-forward");
    }
}

/// On a factor-1 run the rank-0 accumulators must tile the epoch to the
/// nanosecond and the trace must corroborate every category exactly.
#[test]
fn faulted_accumulators_tile_and_reconcile_with_the_trace() {
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::single(p3_16xlarge()),
        zoo::resnet18(),
        32,
        32 * 12,
    );
    cfg.epoch_mode = EpochMode::Full;
    cfg.record_trace = true;
    let base = run_epoch(&cfg).expect("baseline");

    // One straggler window on the reporting rank plus a restart-style
    // preemption: both recovery and straggler stall are non-zero.
    let mut plan = FaultPlan::empty();
    plan.recovery.checkpoint_every = 4;
    plan.events.push(FaultEvent {
        at: SimTime::ZERO + base.epoch_time.mul_f64(0.2),
        kind: FaultKind::StragglerWindow {
            rank: 0,
            duration: base.epoch_time.mul_f64(0.2),
            slowdown: 1.9,
        },
    });
    plan.events.push(FaultEvent {
        at: SimTime::ZERO + base.epoch_time.mul_f64(0.55),
        kind: FaultKind::Preemption {
            node: 0,
            restart_after: Some(base.epoch_time.mul_f64(0.08)),
        },
    });

    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    let run = run_epoch_faulted_traced(&cfg, &plan, &tracer).expect("faulted");
    let r = &run.report;
    assert!(r.recovery_time > SimDuration::ZERO);
    assert!(r.straggler_time > SimDuration::ZERO);
    assert!(run.faults.replayed_iterations > 0);

    // Integer-nanosecond conservation of the rank-0 timeline.
    let accounted = r.compute_time + r.data_wait + r.comm_wait + r.recovery_time + r.straggler_time;
    assert_eq!(
        accounted.as_nanos(),
        r.epoch_time.as_nanos(),
        "faulted accumulators must tile the epoch exactly"
    );

    // Trace rollup reconciliation, category by category.
    let events = sink.borrow().events().to_vec();
    let path = CriticalPath::from_events(&events, 0, Track::gpu(0, 0));
    let raw = |cats: &[PathCategory]| {
        SimDuration::from_nanos(cats.iter().map(|&c| path.total_ns(c)).sum::<u64>())
    };
    let checks = [
        (
            "compute",
            raw(&[PathCategory::Compute, PathCategory::Overlap]),
            r.compute_time,
        ),
        (
            "data-wait",
            raw(&[PathCategory::Prep, PathCategory::Fetch]),
            r.data_wait,
        ),
        (
            "comm-wait",
            raw(&[PathCategory::Interconnect, PathCategory::Network]),
            r.comm_wait,
        ),
        ("recovery", raw(&[PathCategory::Recovery]), r.recovery_time),
        (
            "straggler",
            raw(&[PathCategory::Straggler]),
            r.straggler_time,
        ),
    ];
    for (what, traced, engine) in checks {
        assert_eq!(traced, engine, "traced {what} diverged from the engine");
    }
}

/// Elastic re-formation keeps the survivors' books exact and retires the
/// dead node's ranks and samples.
#[test]
fn elastic_reformation_conserves_survivor_time() {
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        zoo::resnet18(),
        32,
        32 * 12,
    );
    cfg.epoch_mode = EpochMode::Full;
    let base = run_epoch(&cfg).expect("baseline");
    let mut plan = FaultPlan::empty();
    plan.events.push(FaultEvent {
        at: SimTime::ZERO + base.epoch_time.mul_f64(0.5),
        kind: FaultKind::Preemption {
            node: 1,
            restart_after: None,
        },
    });
    let run = run_epoch_faulted(&cfg, &plan).expect("faulted");
    let r = &run.report;
    assert_eq!(run.faults.dead_nodes, vec![1]);
    assert_eq!(r.world, base.world / 2);
    assert!(r.samples < base.samples);
    let accounted = r.compute_time + r.data_wait + r.comm_wait + r.recovery_time + r.straggler_time;
    assert_eq!(accounted.as_nanos(), r.epoch_time.as_nanos());
}
