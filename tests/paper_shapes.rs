//! Cross-crate integration tests asserting the paper's headline
//! qualitative results end-to-end (DESIGN.md §5). These run the full
//! profiler pipeline — engine, flow network, data pipeline, collectives —
//! with reduced iteration counts to stay fast in debug builds.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash::prelude::*;

fn quick(model: Model) -> Stash {
    Stash::new(model)
        .with_sampled_iterations(4)
        .with_epoch_samples(40_000)
}

fn quick_batch(model: Model, batch: u64) -> Stash {
    quick(model).with_batch(batch)
}

/// Shape 1: CPU (prep) stalls are negligible on AWS (Figs. 4a, 8a, 9a).
#[test]
fn cpu_stalls_negligible_across_families() {
    for cluster in [
        ClusterSpec::single(p2_8xlarge()),
        ClusterSpec::single(p3_16xlarge()),
    ] {
        let r = quick(zoo::resnet18()).profile(&cluster).unwrap();
        let cpu = r.cpu_stall_pct().unwrap();
        assert!(cpu < 12.0, "{}: CPU stall {cpu}%", cluster.display_name());
    }
}

/// Shape 2: disk stalls grow with the number of workers (= GPUs) per
/// instance; 16xlarge worst in its family (Figs. 4b, 8b).
#[test]
fn disk_stalls_scale_with_gpu_count() {
    let stash = quick(zoo::resnet18());
    let d = |inst| {
        stash
            .profile(&ClusterSpec::single(inst))
            .unwrap()
            .disk_stall_pct()
            .unwrap()
    };
    let x1 = d(p2_xlarge());
    let x8 = d(p2_8xlarge());
    let x16 = d(p2_16xlarge());
    assert!(x16 > x8, "p2: 16x {x16}% vs 8x {x8}%");
    assert!(x8 >= x1, "p2: 8x {x8}% vs x {x1}%");
}

/// Shape 3: p2.16xlarge has the worst interconnect stall of the P2 family
/// (PCIe slicing, Figs. 5a, 7).
#[test]
fn p2_16x_has_worst_interconnect_stall() {
    let stash = quick(zoo::resnet18());
    let ic = |inst| {
        stash
            .profile(&ClusterSpec::single(inst))
            .unwrap()
            .interconnect_stall_pct()
            .unwrap()
    };
    let x8 = ic(p2_8xlarge());
    let x16 = ic(p2_16xlarge());
    assert!(x16 > x8, "16x {x16}% vs 8x {x8}%");
    assert!(x16 > 30.0, "16x stall should be severe, got {x16}%");
}

/// Shape 4: two networked p2.8xlarge beat one p2.16xlarge on epoch time
/// (Fig. 6a) at equal price — so also on cost (Fig. 6b).
#[test]
fn two_p2_8x_beat_one_p2_16x() {
    let stash = quick(zoo::resnet18());
    let single = stash.profile(&ClusterSpec::single(p2_16xlarge())).unwrap();
    let pair = stash
        .profile(&ClusterSpec::homogeneous(p2_8xlarge(), 2))
        .unwrap();
    let t16 = single.times.t2.unwrap();
    let t8x2 = pair.times.t5.unwrap();
    assert!(t8x2 < t16, "8xlarge*2 {t8x2} should beat 16xlarge {t16}");
}

/// Shape 5: on P3, the (degraded) p3.8xlarge has a higher interconnect
/// stall than the full-crossbar p3.16xlarge (Figs. 5b, 11); a lucky full
/// slice removes the anomaly.
#[test]
fn p3_8x_slicing_anomaly() {
    let stash = quick(zoo::resnet18());
    let ic = |inst| {
        stash
            .profile(&ClusterSpec::single(inst))
            .unwrap()
            .interconnect_stall_pct()
            .unwrap()
    };
    let degraded = ic(p3_8xlarge_sliced(Slicing::Degraded));
    let full_slice = ic(p3_8xlarge_sliced(Slicing::Full));
    let x16 = ic(p3_16xlarge());
    assert!(degraded > x16, "degraded 8x {degraded}% vs 16x {x16}%");
    assert!(
        full_slice < degraded,
        "full slice {full_slice}% vs degraded {degraded}%"
    );
}

/// Shape 6: p3.24xlarge is no faster than p3.16xlarge (same NVLink) but
/// strictly more expensive (Fig. 12, §V-B).
#[test]
fn p3_24x_not_faster_but_costlier() {
    let stash = quick_batch(zoo::resnet50(), 16);
    let c16 = ClusterSpec::single(p3_16xlarge());
    let c24 = ClusterSpec::single(p3_24xlarge());
    let r16 = stash.profile(&c16).unwrap();
    let r24 = stash.profile(&c24).unwrap();
    let t16 = r16.times.t2.unwrap().as_secs_f64();
    let t24 = r24.times.t2.unwrap().as_secs_f64();
    assert!((t24 - t16).abs() / t16 < 0.05, "t16={t16} t24={t24}");
    let cost16 = epoch_cost(&r16, &c16).epoch_cost;
    let cost24 = epoch_cost(&r24, &c24).epoch_cost;
    assert!(cost24 > cost16, "24x ${cost24} vs 16x ${cost16}");
}

/// Shape 7: the network stall of 2x p3.8xlarge is in the hundreds of
/// percent and falls as the batch grows (Fig. 13).
#[test]
fn network_stall_magnitude_and_batch_trend() {
    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let nw = |batch| {
        quick_batch(zoo::resnet50(), batch)
            .profile(&cluster)
            .unwrap()
            .network_stall_pct()
            .unwrap()
    };
    let small = nw(4);
    let large = nw(32);
    assert!(small > 100.0, "batch-4 network stall {small}%");
    assert!(
        small > large,
        "stall must fall with batch: {small}% -> {large}%"
    );
}

/// Shape 8: VGG (few layers, huge gradients) vs ResNet (many layers, small
/// gradients) — interconnect stall favours VGG, network stall punishes it
/// (Fig. 16, §VI).
#[test]
fn vgg_vs_resnet_asymmetry() {
    let nvlink = ClusterSpec::single(p3_16xlarge());
    let network = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let vgg_r = quick(zoo::vgg11()).profile(&network).unwrap();
    let res_r = quick(zoo::resnet18()).profile(&network).unwrap();
    // Interconnect: ResNet stalls at least as much as VGG despite 12x
    // fewer gradient bytes.
    let _ = nvlink;
    let vgg_ic = vgg_r.interconnect_stall_pct().unwrap();
    let res_ic = res_r.interconnect_stall_pct().unwrap();
    assert!(
        res_ic >= vgg_ic * 0.8,
        "resnet I/C {res_ic}% vs vgg {vgg_ic}%"
    );
    // Network: VGG stalls far more.
    let vgg_nw = vgg_r.network_stall_pct().unwrap();
    let res_nw = res_r.network_stall_pct().unwrap();
    assert!(vgg_nw > res_nw, "vgg N/W {vgg_nw}% vs resnet {res_nw}%");
}

/// Shape 9: removing batch-norm lowers communication stalls; removing
/// residual shortcuts changes little (Fig. 16, §VI-A3).
#[test]
fn bn_and_residual_ablations() {
    let cluster = ClusterSpec::single(p3_16xlarge());
    let ic = |model| {
        quick(model)
            .profile(&cluster)
            .unwrap()
            .interconnect_stall_pct()
            .unwrap()
    };
    let base = ic(resnet(50));
    let no_bn = ic(resnet_with(
        50,
        ResNetOptions {
            batch_norm: false,
            residual: true,
        },
    ));
    let no_skip = ic(resnet_with(
        50,
        ResNetOptions {
            batch_norm: true,
            residual: false,
        },
    ));
    assert!(no_bn < base, "no-BN {no_bn}% vs base {base}%");
    assert!(
        (no_skip - base).abs() < 0.3 * base.max(1.0),
        "no-skip {no_skip}% vs base {base}%"
    );
}

/// Contention is emergent: on P2, real-data training (H2D uploads on the
/// same host bus as the staged all-reduce ring) is slower than synthetic
/// training, beyond what the disk adds on a warm cache.
#[test]
fn h2d_and_allreduce_contend_on_the_p2_host_bus() {
    let stash = quick(zoo::alexnet());
    let r = stash.profile(&ClusterSpec::single(p2_16xlarge())).unwrap();
    let t2 = r.times.t2.unwrap();
    let t4 = r.times.t4.unwrap();
    assert!(
        t4 > t2,
        "warm real-data epoch {t4} must exceed synthetic {t2}"
    );
}

/// The §VI analytic parameters separate regimes by orders of magnitude.
#[test]
fn analytic_parameters_separate_interconnect_generations() {
    let nv = link_parameters(&ClusterSpec::single(p3_16xlarge()));
    let pcie = link_parameters(&ClusterSpec::single(p2_16xlarge()));
    let net = link_parameters(&ClusterSpec::homogeneous(p3_8xlarge(), 2));
    assert!(nv.bandwidth_bps > 20.0 * pcie.bandwidth_bps);
    assert!(nv.bandwidth_bps > 20.0 * net.bandwidth_bps);
    assert!(pcie.tau_seconds > nv.tau_seconds);
}

/// Shape 10: ShuffleNet cannot exploit a V100 — its cheapest home is the
/// P2 family (Figs. 14, 15).
#[test]
fn shufflenet_is_cheapest_on_p2() {
    let stash = quick(zoo::shufflenet());
    let p2 = ClusterSpec::single(p2_xlarge());
    let p3 = ClusterSpec::single(p3_2xlarge());
    let cost_p2 = epoch_cost(&stash.profile(&p2).unwrap(), &p2).epoch_cost;
    let cost_p3 = epoch_cost(&stash.profile(&p3).unwrap(), &p3).epoch_cost;
    assert!(cost_p2 < cost_p3, "p2 ${cost_p2} vs p3 ${cost_p3}");
}
