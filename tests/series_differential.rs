//! The iteration series must be a pure observer with exact books: turning
//! recording on cannot change a bit of any [`EpochReport`], and the
//! downsampled series totals must reconcile against the report's stall
//! accumulators at integer-nanosecond exactness — across the model zoo,
//! with fast-forward on and off (compressed regions included), and with a
//! seeded [`FaultPlan`] driving preemptions, stragglers and bandwidth
//! faults through the replay/rebill machinery.
//!
//! This file holds exactly one test: the telemetry switch is process-wide
//! and the default harness runs tests in parallel.
//!
//! [`EpochReport`]: stash::ddl::report::EpochReport

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash::ddl::engine::{run_epoch_faulted_with, run_epoch_series, run_epoch_with, EngineOptions};
use stash::prelude::*;
use stash::telemetry::series::IterSeries;

fn clusters() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p2_16xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
    ]
}

/// The series' running sums must equal the report's accumulators exactly:
/// `report.<cat> == from_nanos(totals.<cat>_ns) * factor` where `factor`
/// is the sampled-epoch extrapolation the report itself applied.
fn assert_reconciles(report: &EpochReport, series: &IterSeries, what: &str) {
    let t = series.totals();
    let factor = report.iterations as f64 / report.simulated_iterations as f64;
    let scaled = |ns: i64, cat: &str| {
        let ns = u64::try_from(ns).unwrap_or_else(|_| panic!("{what}: negative {cat} total {ns}"));
        SimDuration::from_nanos(ns).mul_f64(factor)
    };
    assert_eq!(
        report.compute_time,
        scaled(t.compute_ns, "compute"),
        "{what}: compute drift"
    );
    assert_eq!(
        report.data_wait,
        scaled(t.data_wait_ns, "data_wait"),
        "{what}: data_wait drift"
    );
    assert_eq!(
        report.comm_wait,
        scaled(t.comm_wait_ns, "comm_wait"),
        "{what}: comm_wait drift"
    );
    assert_eq!(
        report.recovery_time,
        scaled(t.recovery_ns, "recovery"),
        "{what}: recovery drift"
    );
    assert_eq!(
        report.straggler_time,
        scaled(t.straggler_ns, "straggler"),
        "{what}: straggler drift"
    );
}

/// Bucket timestamps must be monotone and — on fault-free runs, where no
/// replay rewinds the clock attribution — contiguous: each bucket ends
/// exactly where the next begins, starting from t=0. Pair-merging
/// preserves this because a merged bucket keeps the first window's start
/// and the summed wall.
fn assert_contiguous(series: &IterSeries, what: &str) {
    let mut expect_start = 0u64;
    for (i, s) in series.samples.iter().enumerate() {
        assert_eq!(
            s.start_ns, expect_start,
            "{what}: bucket {i} not contiguous"
        );
        expect_start = s.start_ns + s.wall_ns;
    }
    assert!(
        series.end_ns >= expect_start,
        "{what}: end_ns precedes last bucket"
    );
}

#[test]
fn series_reconciles_exactly_and_never_perturbs() {
    stash::telemetry::enable();

    // --- zoo sweep: bit-identical reports + exact reconciliation.
    for cluster in clusters() {
        for model in zoo::small_models() {
            let mut cfg = TrainConfig::synthetic(cluster.clone(), model.clone(), 32, 32 * 64);
            cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
            for fast_forward in [false, true] {
                let what = format!(
                    "{} x {} ff={fast_forward}",
                    cfg.cluster.display_name(),
                    model.name
                );
                let options = EngineOptions { fast_forward };
                let plain = run_epoch_with(&cfg, &options).expect("plain epoch");
                let sr = run_epoch_series(&cfg, &options, None).expect("series epoch");
                assert_eq!(plain, sr.run.report, "{what}: series perturbed the report");
                assert!(!sr.series.is_empty(), "{what}: empty series");
                let t = sr.series.totals();
                assert_eq!(
                    t.iterations, plain.simulated_iterations,
                    "{what}: iteration count drift"
                );
                assert_reconciles(&plain, &sr.series, &what);
                assert_contiguous(&sr.series, &what);
            }
        }
    }

    // --- long full epoch: fast-forward engages and the skipped span shows
    // up as an explicitly compressed region whose books still balance.
    let mut long = TrainConfig::synthetic(
        ClusterSpec::single(p3_8xlarge()),
        zoo::resnet18(),
        32,
        32 * 200,
    );
    long.epoch_mode = EpochMode::Full;
    let plain = run_epoch_with(&long, &EngineOptions { fast_forward: true }).expect("plain");
    let sr = run_epoch_series(&long, &EngineOptions { fast_forward: true }, None).expect("series");
    assert_eq!(
        plain, sr.run.report,
        "long run: series perturbed the report"
    );
    let t = sr.series.totals();
    assert!(
        t.ff_iterations > 0,
        "long run: fast-forward never engaged (ff_iterations=0)"
    );
    assert!(
        sr.series.samples.iter().any(|s| s.ff_iterations > 0),
        "long run: no compressed-region sample"
    );
    assert_eq!(
        t.iterations, plain.simulated_iterations,
        "long run: count drift"
    );
    assert_reconciles(&plain, &sr.series, "long run");
    assert_contiguous(&sr.series, "long run");

    // --- seeded fault plans: the faulted run is bit-identical with the
    // series on, reconciliation survives checkpoint-replay rebilling and
    // elastic reform, and fired events become window annotations.
    let mut faulty = TrainConfig::synthetic(
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        zoo::resnet18(),
        32,
        32 * 16,
    );
    faulty.epoch_mode = EpochMode::Full;
    let base = run_epoch(&faulty).expect("baseline");
    for seed in [7, 11, 23] {
        let plan = FaultPlan::seeded(seed, faulty.cluster.world_size(), 2, base.epoch_time);
        for fast_forward in [false, true] {
            let what = format!("seed {seed} ff={fast_forward}");
            let options = EngineOptions { fast_forward };
            let faulted = run_epoch_faulted_with(&faulty, &plan, &options).expect("faulted epoch");
            let sr = run_epoch_series(&faulty, &options, Some(&plan)).expect("series epoch");
            assert_eq!(faulted, sr.run, "{what}: series perturbed the faulted run");
            assert_reconciles(&sr.run.report, &sr.series, &what);
            let fired = sr.run.faults.events.iter().filter(|e| e.fired).count();
            assert!(
                sr.series.annotations.len() >= fired,
                "{what}: {fired} fired events but only {} annotations",
                sr.series.annotations.len()
            );
            for a in &sr.series.annotations {
                assert!(
                    a.end_ns >= a.start_ns,
                    "{what}: inverted annotation {:?}",
                    a.label
                );
            }
        }
    }

    // --- switch off: the same entry point degrades to a plain run with an
    // empty series.
    stash::telemetry::disable();
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::single(p3_2xlarge()),
        zoo::resnet18(),
        32,
        32 * 64,
    );
    cfg.epoch_mode = EpochMode::Sampled { iterations: 8 };
    let plain = run_epoch(&cfg).expect("plain epoch");
    let sr =
        run_epoch_series(&cfg, &EngineOptions { fast_forward: true }, None).expect("series epoch");
    assert_eq!(plain, sr.run.report, "disabled: report drift");
    assert!(sr.series.is_empty(), "disabled: series not empty");
}
