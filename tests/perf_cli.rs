//! End-to-end tests of `stash perf`, the telemetry mode of `stash diff`,
//! and the `stash chaos --flight` recorder, driving the compiled binary.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::Command;

use serde_json::{Number, Value};

fn stash(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stash"))
        .args(args)
        .output()
        .expect("run stash binary")
}

fn tmp(name: &str) -> String {
    std::env::temp_dir()
        .join(name)
        .to_str()
        .expect("utf-8 temp path")
        .to_string()
}

fn read_json(path: &str) -> Value {
    let text = std::fs::read_to_string(path).expect("read artifact");
    serde_json::from_str(&text).expect("parse artifact")
}

/// One `stash perf` instance run; returns the parsed JSON document.
fn run_perf(base: &str) -> Value {
    let _ = std::fs::remove_file(format!("{base}.json"));
    let _ = std::fs::remove_file(format!("{base}.prom"));
    let out = stash(&["perf", "p3.2xlarge", "shufflenet", "--out", base]);
    assert!(
        out.status.success(),
        "perf failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(
        stdout.contains("prom validated"),
        "missing marker:\n{stdout}"
    );
    read_json(&format!("{base}.json"))
}

#[test]
fn perf_emits_schema_complete_deterministic_telemetry() {
    let base = tmp("stash_perf_cli_a");
    let doc = run_perf(&base);

    assert_eq!(doc["schema"].as_str(), Some("stash-telemetry-v1"));
    assert_eq!(doc["scope"].as_str(), Some("instance"));
    // The acceptance-critical families, all populated by a real profile.
    for counter in [
        "stash_sim_queue_events_pushed_total",
        "stash_sim_queue_events_popped_total",
        "stash_sim_ff_iterations_total",
        "stash_cache_misses_total",
    ] {
        assert!(
            doc["counters"][counter].as_u64().unwrap_or(0) > 0,
            "{counter} not populated"
        );
    }
    assert!(doc["counters"]["stash_sim_queue_events_cancelled_total"].is_number());
    assert!(doc["counters"]["stash_cache_hits_total"].is_number());
    let solver = &doc["histograms"]["stash_sim_solver_recompute_latency_ns"];
    assert!(solver["count"].as_u64().unwrap_or(0) > 0);
    assert!(solver["p99"].as_u64().is_some());
    assert!(solver["buckets"].as_array().is_some_and(|b| !b.is_empty()));

    // The exposition twin must satisfy the strict validator.
    let prom = std::fs::read_to_string(format!("{base}.prom")).expect("read prom");
    stash::telemetry::prom::validate(&prom).expect("prom artifact validates");
    assert!(prom.contains("stash_sim_solver_recompute_latency_ns_bucket"));

    // The simulation-derived sections are deterministic run to run
    // (histograms measuring host wall-clock are exempt by nature).
    let again = run_perf(&tmp("stash_perf_cli_b"));
    assert_eq!(doc["counters"], again["counters"], "counters drifted");
    assert_eq!(doc["gauges"], again["gauges"], "gauges drifted");
    assert_eq!(
        doc["histograms"]["stash_data_fetch_service_ns"],
        again["histograms"]["stash_data_fetch_service_ns"],
        "sim-time histogram drifted"
    );
}

#[test]
fn diff_gates_on_simulator_health() {
    let base = tmp("stash_perf_diff_base");
    let doc = run_perf(&base);
    let base_json = format!("{base}.json");

    // Self-diff is clean.
    let out = stash(&["diff", &base_json, &base_json]);
    assert!(
        out.status.success(),
        "self-diff failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("no simulator-health regressions"));
    assert!(stdout.contains("solver recompute p99"));

    // A doctored solver p99 fails with a non-zero exit. The vendored
    // Value has no IndexMut; Map::insert replaces in place, preserving
    // key order, so only the one cell differs from the baseline.
    let object = |v: &Value| match v {
        Value::Object(m) => m.clone(),
        other => panic!("expected object, got {other:?}"),
    };
    let hist_name = "stash_sim_solver_recompute_latency_ns";
    let mut root = object(&doc);
    let mut hists = object(root.get("histograms").expect("histograms"));
    let mut solver = object(hists.get(hist_name).expect("solver histogram"));
    solver.insert("p99".to_string(), Value::Number(Number::U(10_000_000_000)));
    hists.insert(hist_name.to_string(), Value::Object(solver));
    root.insert("histograms".to_string(), Value::Object(hists));
    let bad = Value::Object(root);
    let bad_path = tmp("stash_perf_diff_bad.json");
    std::fs::write(&bad_path, serde_json::to_string_pretty(&bad).expect("ser"))
        .expect("write doctored doc");
    let out = stash(&["diff", &base_json, &bad_path]);
    assert!(!out.status.success(), "doctored p99 regression not caught");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.contains("solver recompute p99"),
        "wrong failure:\n{stderr}"
    );

    // Mixing a telemetry doc with a stall report is an error, not a pass.
    let other_path = tmp("stash_perf_diff_other.json");
    std::fs::write(&other_path, r#"{"schema":"stash-insight-v1"}"#).expect("write other doc");
    let out = stash(&["diff", &base_json, &other_path]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(stderr.contains("cannot diff"), "wrong failure:\n{stderr}");
}

#[test]
fn chaos_flight_recorder_dumps_deterministic_json_on_typed_error() {
    let plan_path = tmp("stash_flight_bad_plan.json");
    std::fs::write(&plan_path, "{ not a fault plan").expect("write bad plan");

    let run = |flight: &str| {
        let _ = std::fs::remove_file(flight);
        let out = stash(&[
            "chaos",
            "p3.2xlarge",
            "shufflenet",
            "--plan",
            &plan_path,
            "--flight",
            flight,
        ]);
        assert!(!out.status.success(), "bad plan must fail the run");
        let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
        assert!(
            stderr.contains("flight recording written to"),
            "no dump notice:\n{stderr}"
        );
        std::fs::read_to_string(flight).expect("flight dump exists")
    };

    let dump = run(&tmp("stash_flight_a.json"));
    let doc: Value = serde_json::from_str(&dump).expect("dump is valid JSON");
    assert_eq!(doc["schema"].as_str(), Some("stash-flight-v1"));
    let events = doc["events"].as_array().expect("events array");
    assert!(
        !events.is_empty(),
        "baseline epoch must have recorded engine events"
    );
    for ev in events {
        assert!(ev["seq"].is_number());
        assert!(ev["t_ns"].is_number());
        assert!(ev["event"].is_string());
    }
    // Sequence numbers are contiguous oldest-first; the ring dropped the
    // run's earlier events once past capacity.
    let seqs: Vec<u64> = events
        .iter()
        .map(|e| e["seq"].as_u64().unwrap_or(0))
        .collect();
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "seqs: {seqs:?}");
    assert_eq!(
        doc["recorded"].as_u64().unwrap_or(0) - events.len() as u64,
        doc["dropped"].as_u64().unwrap_or(0)
    );

    // The simulation is deterministic, so the dump is byte-identical
    // across identical failing runs.
    assert_eq!(run(&tmp("stash_flight_b.json")), dump);
}
