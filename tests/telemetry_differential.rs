//! Telemetry must be a pure observer: flipping the registry switch cannot
//! change a single bit of any simulation result. The instrumentation is
//! all relaxed atomics — no RNG draws, no event reordering, no timing
//! feedback — so an [`EpochReport`] produced with telemetry enabled must
//! equal the disabled run exactly, across the model zoo, single- and
//! multi-node clusters, real-data pipelines, and fast-forward on or off.
//!
//! This file holds exactly one test: the telemetry switch is process-wide
//! and the default harness runs tests in parallel.
//!
//! [`EpochReport`]: stash::ddl::report::EpochReport

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash::ddl::engine::{run_epoch_with, EngineOptions};
use stash::prelude::*;

fn configs() -> Vec<TrainConfig> {
    let mut out = Vec::new();
    for (model, batch) in [
        (zoo::shufflenet(), 32),
        (zoo::resnet18(), 32),
        (zoo::bert_large(), 4),
    ] {
        for cluster in [
            ClusterSpec::single(p3_2xlarge()),
            ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ] {
            // Enough iterations for the fast-forward detector to confirm
            // a cycle and skip ahead, so the FF branch is differentially
            // covered too.
            let mut cfg = TrainConfig::synthetic(cluster, model.clone(), batch, batch * 64);
            cfg.epoch_mode = EpochMode::Sampled { iterations: 10 };
            out.push(cfg);
        }
    }
    // One real-data config: the loader pipeline is where telemetry shares
    // the transfer-open table with the tracer, so fetch/prep service
    // instrumentation must be proven inert too.
    let mut real = TrainConfig::synthetic(
        ClusterSpec::single(p3_8xlarge()),
        zoo::resnet18(),
        32,
        32 * 64,
    );
    real.epoch_mode = EpochMode::Sampled { iterations: 6 };
    real.data = DataMode::Real {
        dataset: DatasetSpec::imagenet1k(),
        cache: CacheState::Warm,
    };
    out.push(real);
    out
}

#[test]
fn epoch_reports_are_bit_identical_with_telemetry_on() {
    let configs = configs();
    let modes = [
        EngineOptions { fast_forward: true },
        EngineOptions {
            fast_forward: false,
        },
    ];

    stash::telemetry::disable();
    let mut baseline = Vec::new();
    for cfg in &configs {
        for options in &modes {
            baseline.push(run_epoch_with(cfg, options).expect("disabled run"));
        }
    }

    stash::telemetry::enable();
    let mut i = 0;
    for cfg in &configs {
        for options in &modes {
            let report = run_epoch_with(cfg, options).expect("enabled run");
            assert_eq!(
                report,
                baseline[i],
                "telemetry changed the simulation: {} on {} (fast_forward: {})",
                cfg.model.name,
                cfg.cluster.display_name(),
                options.fast_forward
            );
            i += 1;
        }
    }
    stash::telemetry::disable();

    // The enabled pass must actually have recorded something, or this
    // test proves nothing about the instrumented paths.
    let snap = stash::telemetry::snapshot::Snapshot::take();
    assert!(snap.counter("stash_sim_queue_events_popped_total") > 0);
    assert!(snap.counter("stash_sim_solver_full_recomputes_total") > 0);
    assert!(snap.counter("stash_sim_ff_iterations_total") > 0);
    let fetch = snap
        .histogram("stash_data_fetch_service_ns")
        .expect("fetch histogram in schema");
    assert!(fetch.count > 0, "real-data config must record fetches");
}
