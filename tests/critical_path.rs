//! End-to-end checks on the trace-analysis layer: the critical-path
//! decomposition must reconcile with the engine's own stall accounting
//! at integer-nanosecond exactness, and the trace-driven what-if
//! projection must agree with a ground-truth re-simulation on rescaled
//! hardware within the documented tolerance.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::rc::Rc;

use stash::prelude::*;

fn traced_cfg(cluster: ClusterSpec, model: Model, batch: u64) -> TrainConfig {
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    let mut cfg = TrainConfig::synthetic(cluster, model, batch, batch * 12);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
    cfg.record_trace = true;
    cfg.data = DataMode::Real {
        dataset,
        cache: CacheState::Warm,
    };
    cfg
}

fn run_traced(cfg: &TrainConfig) -> (EpochReport, CriticalPath) {
    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    let report = run_epoch_traced(cfg, &tracer).expect("traced run");
    let events = sink.borrow().events().to_vec();
    let path = CriticalPath::from_events(&events, 0, Track::gpu(0, 0));
    (report, path)
}

#[test]
fn critical_path_reconciles_with_epoch_report_exactly() {
    for cluster in [
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ClusterSpec::single(p2_8xlarge()),
    ] {
        let name = cluster.display_name();
        let cfg = traced_cfg(cluster, zoo::resnet50(), 16);
        let (report, path) = run_traced(&cfg);
        let factor = report.iterations as f64 / report.simulated_iterations as f64;

        // The decomposition partitions the raw span categories, so each
        // engine accumulator — extrapolated through the very same
        // `mul_f64` the report used — must match to the nanosecond.
        let raw = |cats: &[PathCategory]| {
            SimDuration::from_nanos(cats.iter().map(|&c| path.total_ns(c)).sum::<u64>())
        };
        assert_eq!(
            raw(&[PathCategory::Compute, PathCategory::Overlap]).mul_f64(factor),
            report.compute_time,
            "{name}: compute + overlap must equal engine compute"
        );
        assert_eq!(
            raw(&[PathCategory::Prep, PathCategory::Fetch]).mul_f64(factor),
            report.data_wait,
            "{name}: prep + fetch must equal engine data-wait"
        );
        assert_eq!(
            raw(&[PathCategory::Interconnect, PathCategory::Network]).mul_f64(factor),
            report.comm_wait,
            "{name}: interconnect + network must equal engine comm-wait"
        );

        // And the partition itself loses nothing.
        assert_eq!(
            path.path_len_ns(),
            path.wall_ns,
            "{name}: path must tile the wall"
        );
        let sum: u64 = PathCategory::ALL.iter().map(|&c| path.total_ns(c)).sum();
        assert_eq!(
            sum, path.wall_ns,
            "{name}: category totals must sum to the wall"
        );
    }
}

#[test]
fn network_whatif_matches_resimulation_within_tolerance() {
    // Two p3.8xlarge nodes: gradient sync crosses the 10 Gbps NIC, so
    // network stall is on the critical path and doubling the NIC must
    // show up both analytically and in a true re-simulation.
    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let cfg = traced_cfg(cluster.clone(), zoo::resnet50(), 16);
    let (_, path) = run_traced(&cfg);
    assert!(
        path.total_ns(PathCategory::Network) > 0,
        "test premise: network stall must be exposed on this cluster"
    );

    let projected = project(&path, WhatIfResource::Network, 2.0);
    assert!(
        projected < path.wall_ns,
        "2x network must project a speedup"
    );

    let mut scaled_cfg = cfg.clone();
    scaled_cfg.cluster = cluster.scaled(Resource::Network, 2.0);
    let (_, scaled_path) = run_traced(&scaled_cfg);
    let truth = scaled_path.wall_ns;

    let err = (projected as f64 - truth as f64).abs() / truth as f64;
    assert!(
        err <= PROJECTION_TOLERANCE,
        "projection {projected} ns vs re-simulation {truth} ns: {:.1}% error exceeds \
         the documented {:.0}% tolerance",
        err * 100.0,
        PROJECTION_TOLERANCE * 100.0
    );
}

#[test]
fn interconnect_whatif_matches_resimulation_within_tolerance() {
    // Single p3.8xlarge: all-reduce rides the degraded NVLink slice, so
    // the intra-node interconnect is the exposed comm resource.
    let cluster = ClusterSpec::single(p3_8xlarge());
    let cfg = traced_cfg(cluster.clone(), zoo::resnet50(), 16);
    let (_, path) = run_traced(&cfg);
    assert!(
        path.total_ns(PathCategory::Interconnect) > 0,
        "test premise: interconnect stall must be exposed on this cluster"
    );

    let projected = project(&path, WhatIfResource::Interconnect, 2.0);

    let mut scaled_cfg = cfg.clone();
    scaled_cfg.cluster = cluster.scaled(Resource::Interconnect, 2.0);
    let (_, scaled_path) = run_traced(&scaled_cfg);
    let truth = scaled_path.wall_ns;

    let err = (projected as f64 - truth as f64).abs() / truth as f64;
    assert!(
        err <= PROJECTION_TOLERANCE,
        "projection {projected} ns vs re-simulation {truth} ns: {:.1}% error exceeds \
         the documented {:.0}% tolerance",
        err * 100.0,
        PROJECTION_TOLERANCE * 100.0
    );
}

#[test]
fn whatif_identity_reproduces_the_traced_wall() {
    let cfg = traced_cfg(ClusterSpec::single(p3_2xlarge()), zoo::alexnet(), 16);
    let (_, path) = run_traced(&cfg);
    for resource in WhatIfResource::ALL {
        assert_eq!(project(&path, resource, 1.0), path.wall_ns);
    }
}
