//! Integration coverage of engine configurations the figure sweeps don't
//! exercise: alternative collectives, size-capped bucketing, the P4
//! instance, full-epoch mode, and report serialization.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash::prelude::*;

fn base(cluster: ClusterSpec, model: Model) -> TrainConfig {
    let mut cfg = TrainConfig::synthetic(cluster, model, 32, 32 * 4);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 4 };
    cfg
}

#[test]
fn tree_allreduce_trains_and_is_slower_than_ring_across_network() {
    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let ring = run_epoch(&base(cluster.clone(), zoo::vgg11())).unwrap();
    let mut tree_cfg = base(cluster, zoo::vgg11());
    tree_cfg.algorithm = Algorithm::Tree;
    let tree = run_epoch(&tree_cfg).unwrap();
    assert!(
        tree.epoch_time >= ring.epoch_time,
        "tree {} vs ring {}",
        tree.epoch_time,
        ring.epoch_time
    );
}

#[test]
fn parameter_server_is_strictly_worse_than_ring() {
    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let ring = run_epoch(&base(cluster.clone(), zoo::resnet18())).unwrap();
    let mut ps_cfg = base(cluster, zoo::resnet18());
    ps_cfg.algorithm = Algorithm::ParameterServer;
    let ps = run_epoch(&ps_cfg).unwrap();
    assert!(ps.epoch_time > ring.epoch_time);
}

#[test]
fn size_capped_bucketing_trains_deep_models_faster_on_nvlink() {
    let cluster = ClusterSpec::single(p3_16xlarge());
    let per_layer = run_epoch(&base(cluster.clone(), zoo::resnet50())).unwrap();
    let mut capped = base(cluster, zoo::resnet50());
    capped.bucketing = Bucketing::pytorch_default();
    let by_size = run_epoch(&capped).unwrap();
    assert!(
        by_size.epoch_time <= per_layer.epoch_time,
        "25MB buckets {} vs per-layer {}",
        by_size.epoch_time,
        per_layer.epoch_time
    );
}

#[test]
fn p4_nvswitch_beats_p3_nvlink() {
    // The catalog's P4 (A100 + NVSwitch) is not characterized by the paper
    // but must behave sanely: faster epoch than p3.16xlarge, lower
    // interconnect stall fractions.
    let p3 = run_epoch(&base(ClusterSpec::single(p3_16xlarge()), zoo::resnet50())).unwrap();
    let p4r = run_epoch(&base(ClusterSpec::single(p4()), zoo::resnet50())).unwrap();
    assert!(p4r.epoch_time < p3.epoch_time);
}

#[test]
fn full_epoch_mode_agrees_with_sampling_for_synthetic_runs() {
    let cluster = ClusterSpec::single(p3_2xlarge());
    let mut cfg = TrainConfig::synthetic(cluster, zoo::squeezenet(), 32, 32 * 60);
    cfg.epoch_mode = EpochMode::Full;
    let full = run_epoch(&cfg).unwrap();
    cfg.epoch_mode = EpochMode::Sampled { iterations: 6 };
    let sampled = run_epoch(&cfg).unwrap();
    let rel = (full.epoch_time.as_secs_f64() - sampled.epoch_time.as_secs_f64()).abs()
        / full.epoch_time.as_secs_f64();
    assert!(rel < 0.02, "full vs sampled differ by {rel}");
}

#[test]
fn dlrm_is_infeasible_below_p4() {
    // §IV-A: large recommendation models are excluded because cheap VMs
    // cannot hold them; "such large models may best be run on ... P4".
    let dlrm = zoo::dlrm();
    for inst in [p2_16xlarge(), p3_16xlarge(), p3_24xlarge()] {
        let cfg = base(ClusterSpec::single(inst.clone()), dlrm.clone());
        match run_epoch(&cfg) {
            Err(TrainError::OutOfMemory { .. }) => {}
            other => panic!("{} should OOM on DLRM, got {other:?}", inst.name),
        }
    }
    // Even the A100 cannot hold 2.3B params under pure data parallelism —
    // which is exactly why the paper's data-parallel profiler excludes it.
    let cfg = base(ClusterSpec::single(p4()), dlrm);
    assert!(matches!(
        run_epoch(&cfg),
        Err(TrainError::OutOfMemory { .. })
    ));
}

#[test]
fn heterogeneous_cluster_is_dragged_by_the_slowest_gpu() {
    // Mixed K80 + V100 ring: synchronous data parallelism forces the
    // V100s to wait for the K80s every bucket.
    let mixed = ClusterSpec {
        instances: vec![p3_8xlarge(), p2_8xlarge()],
    };
    let fast_only = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let mixed_r = run_epoch(&base(mixed, zoo::resnet18())).unwrap();
    let fast_r = run_epoch(&base(fast_only, zoo::resnet18())).unwrap();
    assert!(
        mixed_r.epoch_time > fast_r.epoch_time.mul_f64(1.5),
        "mixed {} vs fast {}",
        mixed_r.epoch_time,
        fast_r.epoch_time
    );
}

#[test]
fn host_bus_utilization_reflects_pcie_pressure() {
    let p2 = run_epoch(&base(ClusterSpec::single(p2_16xlarge()), zoo::resnet18())).unwrap();
    let p3 = run_epoch(&base(ClusterSpec::single(p3_16xlarge()), zoo::resnet18())).unwrap();
    // P2 rings cross the host bus; P3 synthetic training barely touches it.
    assert!(
        p2.host_bus_utilization > 5.0 * p3.host_bus_utilization.max(1e-6),
        "p2 {} vs p3 {}",
        p2.host_bus_utilization,
        p3.host_bus_utilization
    );
}

#[test]
fn trace_records_every_simulated_iteration() {
    let mut cfg = base(ClusterSpec::single(p3_8xlarge()), zoo::alexnet());
    cfg.record_trace = true;
    let r = run_epoch(&cfg).unwrap();
    assert_eq!(r.trace.len(), r.simulated_iterations as usize);
    // Steady-state iterations (post-warmup) are identical for synthetic data.
    let steady: Vec<_> = r.trace.iter().skip(1).map(|s| s.total).collect();
    assert!(steady.windows(2).all(|w| w[0] == w[1]), "{steady:?}");
    assert!(r.trace.iter().all(|s| s.data_wait.is_zero()));
}

#[test]
fn amp_trains_faster_than_fp32_on_v100() {
    let mut fp32 = base(ClusterSpec::single(p3_16xlarge()), zoo::resnet50());
    let mut amp = fp32.clone();
    amp.precision = Precision::Amp;
    fp32.precision = Precision::Fp32;
    let r32 = run_epoch(&fp32).unwrap();
    let ramp = run_epoch(&amp).unwrap();
    assert!(ramp.epoch_time < r32.epoch_time);
}

#[test]
fn one_straggler_drags_the_whole_ring() {
    // Failure injection: slowing a single rank 2x slows synchronous DDP by
    // nearly 2x — every bucket waits for the slowest rank.
    let healthy = run_epoch(&base(ClusterSpec::single(p3_16xlarge()), zoo::resnet18())).unwrap();
    let mut cfg = base(ClusterSpec::single(p3_16xlarge()), zoo::resnet18());
    cfg.straggler = Some(Straggler {
        rank: 3,
        slowdown: 2.0,
    });
    let straggling = run_epoch(&cfg).unwrap();
    let ratio = straggling.epoch_time.as_secs_f64() / healthy.epoch_time.as_secs_f64();
    assert!((1.6..2.2).contains(&ratio), "slowdown ratio {ratio}");
}

#[test]
fn straggler_validation() {
    let mut cfg = base(ClusterSpec::single(p3_8xlarge()), zoo::alexnet());
    cfg.straggler = Some(Straggler {
        rank: 99,
        slowdown: 2.0,
    });
    assert!(matches!(run_epoch(&cfg), Err(TrainError::InvalidConfig(_))));
    cfg.straggler = Some(Straggler {
        rank: 0,
        slowdown: 0.5,
    });
    assert!(matches!(run_epoch(&cfg), Err(TrainError::InvalidConfig(_))));
}

#[test]
fn grad_accumulation_reduces_comm_wait() {
    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let mut sync_every = TrainConfig::synthetic(cluster.clone(), zoo::vgg11(), 32, 32 * 8);
    sync_every.epoch_mode = EpochMode::Sampled { iterations: 4 };
    let mut accum = sync_every.clone();
    accum.grad_accumulation = 4;
    accum.samples_per_gpu = 32 * 4 * 8;
    let a = run_epoch(&sync_every).unwrap();
    let b = run_epoch(&accum).unwrap();
    assert!(
        b.throughput > a.throughput * 1.5,
        "{} vs {}",
        b.throughput,
        a.throughput
    );
}

#[test]
fn stall_report_serializes_to_json() {
    let report = Stash::new(zoo::alexnet())
        .with_sampled_iterations(2)
        .with_epoch_samples(10_000)
        .profile(&ClusterSpec::single(p3_8xlarge()))
        .unwrap();
    let json = serde_json::to_value(&report).unwrap();
    assert_eq!(json["model"], "AlexNet");
    assert_eq!(json["world"], 4);
    assert!(
        json["times"]["t1"].is_object()
            || json["times"]["t1"].is_number()
            || json["times"]["t1"].is_string()
    );
}

#[test]
fn epoch_report_accounts_are_consistent() {
    let cfg = base(ClusterSpec::single(p3_16xlarge()), zoo::resnet18());
    let r = run_epoch(&cfg).unwrap();
    // Compute + waits can exceed epoch_time only through the warmup
    // extrapolation; each component alone must not.
    assert!(r.compute_time <= r.epoch_time);
    assert!(r.comm_wait <= r.epoch_time);
    assert!(r.data_wait <= r.epoch_time);
    assert_eq!(r.world, 8);
    assert_eq!(r.iterations, 4);
    assert!(r.throughput > 0.0);
    assert_eq!(r.samples, 32 * 4 * 8);
}

#[test]
fn ds_analyzer_matches_stash_on_shared_steps() {
    let model = zoo::alexnet();
    let cluster = ClusterSpec::single(p3_8xlarge());
    let stash = Stash::new(model.clone())
        .with_sampled_iterations(3)
        .with_epoch_samples(20_000)
        .profile(&cluster)
        .unwrap();
    let ds = DsAnalyzer::new(model)
        .with_sampled_iterations(3)
        .profile(p3_8xlarge())
        .unwrap();
    // Same deterministic engine, same steps 2-4 — but DS-Analyzer uses the
    // full-dataset epoch; compare stall *percentages*, which are
    // epoch-size invariant.
    let a = stash.cpu_stall_pct().unwrap();
    let b = ds.cpu_stall_pct().unwrap();
    assert!((a - b).abs() < 2.0, "{a} vs {b}");
}
