//! End-to-end tests of the `stash` command-line profiler, driving the
//! compiled binary like a user would.

use std::process::Command;

fn stash(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stash"))
        .args(args)
        .output()
        .expect("run stash binary")
}

#[test]
fn catalog_lists_all_table1_instances() {
    let out = stash(&["catalog"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in [
        "p4", "p3.2xlarge", "p3.8xlarge", "p3.16xlarge", "p3.24xlarge", "p2.xlarge",
        "p2.8xlarge", "p2.16xlarge",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn models_lists_the_zoo() {
    let out = stash(&["models"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("ResNet18"));
    assert!(stdout.contains("BERT-large"));
    assert!(stdout.contains("345.00"));
}

#[test]
fn probe_reports_per_gpu_bandwidth() {
    let out = stash(&["probe", "p2.16xlarge"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("16 GPUs"));
    assert!(stdout.contains("1.25 GB/s"));
}

#[test]
fn unknown_inputs_fail_with_guidance() {
    let out = stash(&["profile", "gpt9", "p3.16xlarge"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown model"));

    let out = stash(&["profile", "resnet18", "q9.mega"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown instance"));

    let out = stash(&[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage"));
}

#[test]
fn trace_writes_a_valid_chrome_trace() {
    let out_path = std::env::temp_dir().join("stash_cli_trace_test.json");
    let _ = std::fs::remove_file(&out_path);

    let out = stash(&["trace", "p3.2xlarge", "resnet18", "--out", out_path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("trace validated"), "{stdout}");
    assert!(stdout.contains("stash_span_nanoseconds_total"), "{stdout}");

    let text = std::fs::read_to_string(&out_path).expect("trace file written");
    let stats = stash::trace::chrome::validate(&text).expect("CLI trace must validate");
    assert!(stats.spans > 0);
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn oom_configurations_report_cleanly() {
    // BERT-large at batch 64 on a K80: the profiler must fail with the
    // memory message, not panic.
    let out = stash(&["profile", "bert-large", "p2.xlarge", "-b", "64"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("does not fit"), "{stderr}");
}
