//! End-to-end tests of the `stash` command-line profiler, driving the
//! compiled binary like a user would.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::process::Command;

fn stash(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_stash"))
        .args(args)
        .output()
        .expect("run stash binary")
}

#[test]
fn catalog_lists_all_table1_instances() {
    let out = stash(&["catalog"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in [
        "p4",
        "p3.2xlarge",
        "p3.8xlarge",
        "p3.16xlarge",
        "p3.24xlarge",
        "p2.xlarge",
        "p2.8xlarge",
        "p2.16xlarge",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn models_lists_the_zoo() {
    let out = stash(&["models"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("ResNet18"));
    assert!(stdout.contains("BERT-large"));
    assert!(stdout.contains("345.00"));
}

#[test]
fn probe_reports_per_gpu_bandwidth() {
    let out = stash(&["probe", "p2.16xlarge"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("16 GPUs"));
    assert!(stdout.contains("1.25 GB/s"));
}

#[test]
fn unknown_inputs_fail_with_guidance() {
    let out = stash(&["profile", "gpt9", "p3.16xlarge"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown model"));

    let out = stash(&["profile", "resnet18", "q9.mega"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown instance"));

    let out = stash(&[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage"));
}

#[test]
fn trace_writes_a_valid_chrome_trace() {
    let out_path = std::env::temp_dir().join("stash_cli_trace_test.json");
    let _ = std::fs::remove_file(&out_path);

    let out = stash(&[
        "trace",
        "p3.2xlarge",
        "resnet18",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("trace validated"), "{stdout}");
    assert!(stdout.contains("stash_span_nanoseconds_total"), "{stdout}");

    let text = std::fs::read_to_string(&out_path).expect("trace file written");
    let stats = stash::trace::chrome::validate(&text).expect("CLI trace must validate");
    assert!(stats.spans > 0);
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn oom_configurations_report_cleanly() {
    // BERT-large at batch 64 on a K80: the profiler must fail with the
    // memory message, not panic.
    let out = stash(&["profile", "bert-large", "p2.xlarge", "-b", "64"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("does not fit"), "{stderr}");
}

#[test]
fn trace_out_creates_nested_parent_directories() {
    let dir = std::env::temp_dir().join("stash_cli_nested_out_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out_path = dir.join("deep/er/trace.json");

    let out = stash(&[
        "trace",
        "p3.2xlarge",
        "resnet18",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).expect("nested trace file written");
    assert!(stash::trace::chrome::validate(&text).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_writes_reconciled_html_and_json() {
    let dir = std::env::temp_dir().join("stash_cli_report_test");
    let _ = std::fs::remove_dir_all(&dir);
    let base = dir.join("nested/report");

    let out = stash(&[
        "report",
        "p3.8xlarge",
        "resnet50",
        "--out",
        base.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("critical-path reconciliation"), "{stdout}");

    // The JSON parses back into a report whose categories tile the wall.
    let json_text = std::fs::read_to_string(dir.join("nested/report.json")).expect("json written");
    let doc: serde_json::Value = serde_json::from_str(&json_text).unwrap();
    let report = stash::trace::report::InsightReport::from_json(&doc).expect("valid schema");
    let sum: u64 = report.categories.values().sum();
    assert_eq!(sum, report.wall_ns, "category totals must sum to the wall");
    assert!(!report.whatif.is_empty());
    assert!(!report.blame.is_empty());

    // The HTML is self-contained and carries the rollup totals.
    let html = std::fs::read_to_string(dir.join("nested/report.html")).expect("html written");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(!html.contains("http://") && !html.contains("https://") && !html.contains("<script"));
    assert!(html.contains(&format!("<th class=\"num\">{}</th>", report.wall_ns)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_passes_self_compare_and_flags_doctored_report() {
    let dir = std::env::temp_dir().join("stash_cli_diff_test");
    let _ = std::fs::remove_dir_all(&dir);
    let base = dir.join("report");

    let out = stash(&[
        "report",
        "p3.2xlarge",
        "resnet18",
        "--out",
        base.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json_path = dir.join("report.json");
    let json = json_path.to_str().unwrap();

    // Self-compare: no regressions, exit 0.
    let out = stash(&["diff", json, json]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("no stall regressions"));

    // Doctor the current report: inflate the network stall far past the
    // threshold. The diff must flag it and exit non-zero.
    let text = std::fs::read_to_string(&json_path).unwrap();
    let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
    let mut report = stash::trace::report::InsightReport::from_json(&doc).unwrap();
    let inflated = report.category_ns("network") * 3 + 10_000_000;
    report.categories.insert("network".to_string(), inflated);
    let doctored_path = dir.join("doctored.json");
    std::fs::write(
        &doctored_path,
        serde_json::to_string_pretty(&report.to_json()).unwrap(),
    )
    .unwrap();

    let out = stash(&["diff", json, doctored_path.to_str().unwrap()]);
    assert!(!out.status.success(), "doctored report must fail the diff");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("network"), "{stderr}");

    // Garbage input errors out rather than panicking.
    let out = stash(&["diff", json, "/definitely/not/a/file.json"]);
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_names_get_nearest_match_suggestions() {
    let out = stash(&["profile", "ResNet-50", "p3.16xlarge"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("did you mean 'ResNet50'"),
        "no suggestion in: {stderr}"
    );

    let out = stash(&["probe", "p3.16xlage"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("did you mean 'p3.16xlarge'"),
        "no suggestion in: {stderr}"
    );

    let out = stash(&["trace", "p3.2xlarg", "resnet18"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("did you mean 'p3.2xlarge'"),
        "no suggestion in: {stderr}"
    );
}

#[test]
fn diff_rejects_corrupted_json_without_panicking() {
    let dir = std::env::temp_dir().join("stash_cli_corrupt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("corrupt.json");
    std::fs::write(&bad, "{\"cluster\": \"p3.2xlarge\", \"categ").unwrap();
    let out = stash(&["diff", bad.to_str().unwrap(), bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("invalid JSON"), "{stderr}");
    assert!(
        !stderr.contains("panicked"),
        "diff panicked on corrupt input: {stderr}"
    );

    // Structurally valid JSON that is not a report is also a clean error.
    std::fs::write(&bad, "[1, 2, 3]").unwrap();
    let out = stash(&["diff", bad.to_str().unwrap(), bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("panicked"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_rejects_store_dirs_and_binary_records_with_typed_errors() {
    let dir = std::env::temp_dir().join("stash_cli_diff_doctored_test");
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.join("store");

    let out = stash(&[
        "sweep",
        "--models",
        "AlexNet",
        "--clusters",
        "p3.2xlarge",
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A store directory is not a report file: typed error, no panic.
    let out = stash(&["diff", store.to_str().unwrap(), store.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");

    // Neither is a binary record file (non-UTF8 framed bytes).
    let rec = std::fs::read_dir(store.join("records"))
        .unwrap()
        .next()
        .unwrap()
        .unwrap()
        .path();
    assert!(!std::fs::read(&rec).unwrap().is_empty());
    let out = stash(&["diff", rec.to_str().unwrap(), rec.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("cannot read") || stderr.contains("invalid JSON"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dash_refuses_result_stores_and_flags_invalid_json() {
    let dir = std::env::temp_dir().join("stash_cli_dash_doctored_test");
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.join("store");

    let out = stash(&[
        "sweep",
        "--models",
        "AlexNet",
        "--clusters",
        "p3.2xlarge",
        "--store",
        store.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Pointing dash at a result store must refuse, not simulate into it
    // or choke on the binary records.
    let out = stash(&["dash", store.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("result store"), "{stderr}");
    assert!(stderr.contains("fsck"), "{stderr}");

    // A series directory containing broken JSON is a typed,
    // path-qualified error — never a panic or a silent skip.
    let series_dir = dir.join("series");
    std::fs::create_dir_all(&series_dir).unwrap();
    let bad = series_dir.join("broken.json");
    std::fs::write(&bad, "{\"schema\": \"stash-series-v1\", \"poi").unwrap();
    let out = stash(&["dash", series_dir.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("invalid JSON"), "{stderr}");
    assert!(stderr.contains("broken.json"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dash_skips_non_series_json_loudly() {
    let dir = std::env::temp_dir().join("stash_cli_dash_skip_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // One real series document plus one valid-but-unrelated JSON file.
    let series = dir.join("series_a.json");
    let out = stash(&[
        "chaos",
        "p3.2xlarge",
        "alexnet",
        "--seed",
        "3",
        "--series",
        series.to_str().unwrap(),
        "--out",
        dir.join("resilience.json").to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let notes = dir.join("notes.json");
    std::fs::write(&notes, "{\"reviewer\": \"pending\"}").unwrap();

    let out = stash(&["dash", dir.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("skipped (not a series document)") && stdout.contains("notes.json"),
        "non-series JSON must be skipped with a note:\n{stdout}"
    );
    assert!(stdout.contains("loaded series"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_flag_misuse_fails_with_typed_errors() {
    // --resume without --store: there is nothing to resume from.
    let out = stash(&["sweep", "--resume"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--resume requires --store"), "{stderr}");

    // Fault injection without a store has nothing to inject into.
    let out = stash(&["sweep", "--io-fault-seed", "7"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("add --store"), "{stderr}");

    // Non-numeric seed.
    let dir = std::env::temp_dir().join("stash_cli_sweep_flags_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("store");
    let out = stash(&[
        "sweep",
        "--store",
        store.to_str().unwrap(),
        "--io-fault-seed",
        "lots",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("--io-fault-seed wants an integer"),
        "{stderr}"
    );

    // A garbage fault-plan file is a typed parse error, not a panic.
    let plan = dir.join("plan.json");
    std::fs::write(&plan, "{\"faults\": [wat").unwrap();
    let out = stash(&[
        "sweep",
        "--store",
        store.to_str().unwrap(),
        "--io-fault-plan",
        plan.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("invalid I/O fault plan"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsck_and_perf_reject_doctored_paths() {
    // fsck on a path that does not exist must not create a store there.
    let ghost = std::env::temp_dir().join("stash_cli_fsck_ghost_test");
    let _ = std::fs::remove_dir_all(&ghost);
    let out = stash(&["fsck", ghost.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("not a directory"), "{stderr}");
    assert!(!ghost.exists(), "fsck must not conjure a store into being");

    // perf given a filesystem path where a cluster belongs.
    let out = stash(&["perf", "/tmp/not-a-cluster", "resnet18"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown instance"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn chaos_writes_deterministic_resilience_report() {
    let dir = std::env::temp_dir().join("stash_cli_chaos_test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_a = dir.join("a.json");
    let out_b = dir.join("b.json");
    for path in [&out_a, &out_b] {
        let out = stash(&[
            "chaos",
            "p3.2xlarge",
            "alexnet",
            "--seed",
            "5",
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "chaos failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("slowdown"), "{stdout}");
        assert!(stdout.contains("per-event blame"), "{stdout}");
    }
    let a = std::fs::read(&out_a).unwrap();
    let b = std::fs::read(&out_b).unwrap();
    assert_eq!(a, b, "same seed must produce byte-identical reports");

    // The report is valid JSON with the expected schema and a slowdown
    // of at least 1 (faults never speed an epoch up).
    let doc: serde_json::Value =
        serde_json::from_str(&String::from_utf8(a.clone()).unwrap()).unwrap();
    assert_eq!(doc["schema"], "stash-resilience-v1");
    assert!(doc["slowdown"].as_f64().unwrap() >= 1.0);
    assert!(doc["faulted"]["recovery_ns"].as_u64().unwrap() > 0);

    // A corrupted plan file is a clean non-zero exit.
    let bad_plan = dir.join("plan.json");
    std::fs::write(&bad_plan, "{\"events\": [tru").unwrap();
    let out = stash(&[
        "chaos",
        "p3.2xlarge",
        "alexnet",
        "--plan",
        bad_plan.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("panicked"), "{stderr}");

    // A plan that does not fit the cluster is rejected with the typed
    // validation error.
    std::fs::write(
        &bad_plan,
        "{\"events\":[{\"at\":0,\"kind\":{\"StragglerWindow\":{\"rank\":99,\"duration\":1000,\"slowdown\":1.5}}}],\"recovery\":{\"checkpoint_every\":4,\"straggler_timeout\":20000000,\"straggler_backoff\":2.0,\"reform_delay\":500000000}}",
    )
    .unwrap();
    let out = stash(&[
        "chaos",
        "p3.2xlarge",
        "alexnet",
        "--plan",
        bad_plan.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("does not fit"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
