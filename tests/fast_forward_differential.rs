//! Steady-state fast-forward is a pure performance feature: for every
//! model/cluster combination the [`EpochReport`] must be bit-identical
//! with fast-forward on and off, in both sampled and full epoch modes,
//! and with or without a reused [`EngineArena`]. Any drift here means the
//! analytic extension diverged from event-by-event simulation.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash::ddl::engine::{run_epoch_in, run_epoch_with, EngineArena, EngineOptions};
use stash::ddl::perf_stats;
use stash::prelude::*;

fn clusters() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p2_16xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
    ]
}

fn run(cfg: &TrainConfig, fast_forward: bool) -> EpochReport {
    run_epoch_with(cfg, &EngineOptions { fast_forward }).expect("epoch")
}

#[test]
fn sampled_reports_identical_with_fast_forward_on_and_off() {
    for cluster in clusters() {
        for model in zoo::small_models() {
            let name = model.name.clone();
            let mut cfg = TrainConfig::synthetic(cluster.clone(), model, 32, 32 * 64);
            cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
            let off = run(&cfg, false);
            let on = run(&cfg, true);
            assert_eq!(
                off,
                on,
                "fast-forward drifted for {name} on {}",
                cluster.display_name()
            );
        }
    }
}

#[test]
fn full_epoch_reports_identical_with_fast_forward_on_and_off() {
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::single(p3_16xlarge()),
        zoo::resnet50(),
        32,
        32 * 60,
    );
    cfg.epoch_mode = EpochMode::Full;
    let off = run(&cfg, false);
    let on = run(&cfg, true);
    assert_eq!(off, on, "full-mode fast-forward drifted");
}

#[test]
fn fast_forward_engages_on_long_synthetic_runs() {
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::single(p3_16xlarge()),
        zoo::resnet18(),
        32,
        32 * 200,
    );
    cfg.epoch_mode = EpochMode::Full;
    let before = perf_stats::snapshot();
    let on = run(&cfg, true);
    let skipped = perf_stats::snapshot()
        .since(&before)
        .fast_forwarded_iterations;
    assert!(
        skipped >= 150,
        "expected most of 200 iterations to be fast-forwarded, got {skipped}"
    );
    // And the skipped iterations change nothing.
    assert_eq!(run(&cfg, false), on);
}

#[test]
fn reused_arena_is_bit_identical_to_fresh_state() {
    let mut arena = EngineArena::new();
    for cluster in clusters() {
        for model in [zoo::alexnet(), zoo::resnet50()] {
            let name = model.name.clone();
            let mut cfg = TrainConfig::synthetic(cluster.clone(), model, 32, 32 * 40);
            cfg.epoch_mode = EpochMode::Sampled { iterations: 8 };
            let fresh = run_epoch(&cfg).expect("fresh");
            let reused = run_epoch_in(&cfg, &mut arena).expect("reused");
            assert_eq!(
                fresh,
                reused,
                "arena reuse drifted for {name} on {}",
                cluster.display_name()
            );
        }
    }
}

#[test]
fn real_data_and_straggler_runs_are_unaffected_by_the_option() {
    // Real-data pipelines are ineligible for fast-forward; the option must
    // be a strict no-op there.
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::single(p3_16xlarge()),
        zoo::resnet18(),
        32,
        32 * 16,
    );
    cfg.data = DataMode::Real {
        dataset: DatasetSpec::imagenet1k(),
        cache: CacheState::Warm,
    };
    cfg.epoch_mode = EpochMode::Sampled { iterations: 8 };
    assert_eq!(run(&cfg, false), run(&cfg, true));

    // Stragglers shift the steady state but keep it periodic: still exact.
    let mut cfg = TrainConfig::synthetic(
        ClusterSpec::single(p3_16xlarge()),
        zoo::alexnet(),
        32,
        32 * 64,
    );
    cfg.straggler = Some(Straggler {
        rank: 3,
        slowdown: 1.7,
    });
    cfg.epoch_mode = EpochMode::Sampled { iterations: 16 };
    assert_eq!(run(&cfg, false), run(&cfg, true));
}
