//! The generation-counted indexed [`EventQueue`] against a reference
//! model: a plain `BinaryHeap` ordered by `(time, insertion-seq)` with
//! cancellation by linear tombstoning. Random interleavings of schedule /
//! cancel / pop — including bursts at identical timestamps and cancels of
//! stale, delivered and never-issued keys — must produce byte-identical
//! pop sequences and clocks. This is the contract that lets the engine
//! swap queues without perturbing a single simulated nanosecond.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use stash::simkit::queue::{EventKey, EventQueue};
use stash::simkit::time::{SimDuration, SimTime};

/// Reference implementation: ordered by `(at, seq)` exactly like the
/// original engine queue, with cancellation marking entries dead.
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    dead: Vec<bool>,
    now: SimTime,
    next_seq: u64,
}

impl RefQueue {
    fn schedule_at(&mut self, at: SimTime, payload: u32) -> usize {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.dead.push(false);
        self.heap.push(Reverse((at, seq, payload)));
        self.dead.len() - 1
    }

    fn cancel(&mut self, handle: usize) -> bool {
        if self.dead[handle] {
            return false;
        }
        self.dead[handle] = true;
        true
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        while let Some(Reverse((at, seq, payload))) = self.heap.pop() {
            if self.dead[seq as usize] {
                continue;
            }
            self.dead[seq as usize] = true;
            self.now = at;
            return Some((at, payload));
        }
        None
    }
}

proptest! {
    /// Each workload step is an integer pair `(kind, arg)`:
    /// `kind 0..=3` ⇒ schedule at `now + arg % 4` ns (tiny delays force
    /// same-timestamp collisions), `kind 4..=5` ⇒ cancel the
    /// `arg % issued`-th key ever issued (live, delivered or already
    /// cancelled), `kind 6..=8` ⇒ pop.
    #[test]
    fn indexed_queue_matches_reference_heap(
        ops in prop::collection::vec((0_u8..9, 0_u64..64), 1..200),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut r = RefQueue::default();
        let mut keys: Vec<EventKey> = Vec::new();
        let mut handles: Vec<usize> = Vec::new();
        let mut next_payload = 0_u32;

        for (kind, arg) in ops {
            match kind {
                0..=3 => {
                    let payload = next_payload;
                    next_payload += 1;
                    let at = q.now() + SimDuration::from_nanos(arg % 4);
                    keys.push(q.schedule_at(at, payload));
                    handles.push(r.schedule_at(at, payload));
                }
                4..=5 => {
                    if keys.is_empty() {
                        continue;
                    }
                    let i = (arg as usize) % keys.len();
                    prop_assert_eq!(
                        q.cancel(keys[i]),
                        r.cancel(handles[i]),
                        "cancel outcome diverged for key {}", i
                    );
                }
                _ => {
                    prop_assert_eq!(q.pop(), r.pop(), "pop sequence diverged");
                    prop_assert_eq!(q.now(), r.now, "clocks diverged");
                }
            }
            prop_assert_eq!(q.len(), r.dead.iter().filter(|d| !**d).count());
        }

        // Drain both completely: full FIFO order at equal timestamps.
        loop {
            let (a, b) = (q.pop(), r.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
        prop_assert!(q.is_empty());
    }
}
