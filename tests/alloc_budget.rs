//! The zero-allocation steady-state gate: once the engine is warmed up,
//! simulating *more* iterations of a synthetic epoch must not allocate at
//! all. We prove it by running the same configuration at N and 2N
//! iterations inside a reused [`EngineArena`]: every allocation either
//! happens during construction/reporting (identical for both runs) or on
//! the per-iteration hot path (which would make the 2N run allocate
//! more). Equal counts ⇒ the hot path is allocation-free.
//!
//! This file holds exactly one test so the global counting allocator is
//! not polluted by concurrent tests in the same binary.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use stash::ddl::engine::EngineArena;
use stash::prelude::*;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Count only while the measuring thread says so: the libtest harness
// thread blocks in `recv()` for the duration of the test and can lazily
// allocate its parker mid-window, which used to land ±2 allocations in
// a random measured region and flake the exact-equality assertions.
std::thread_local! {
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if MEASURING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let value = f();
    MEASURING.with(|m| m.set(false));
    (value, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

#[test]
fn steady_state_iterations_allocate_exactly_nothing() {
    // Multi-GPU so the hot path exercises collective flows, flow-rate
    // recomputation and the event queue — not just compute timers.
    let mk = |iters: u64| {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_8xlarge()),
            zoo::alexnet(),
            8,
            8 * 128,
        );
        cfg.epoch_mode = EpochMode::Sampled { iterations: iters };
        cfg
    };
    // Fast-forward would trivialize the gate by not simulating the extra
    // iterations; disable it so every iteration runs event by event.
    let options = stash::ddl::engine::EngineOptions {
        fast_forward: false,
    };
    let run = |arena: &mut EngineArena, iters: u64| {
        let cfg = mk(iters);
        allocations_during(|| {
            stash::ddl::engine::run_epoch_in_with(&cfg, &options, arena).expect("epoch")
        })
    };

    let mut arena = EngineArena::new();
    // Warm up: grows every pooled buffer (slab, heap, scratch) to its
    // steady-state capacity and settles lazy one-time initialisation.
    run(&mut arena, 64);
    run(&mut arena, 64);

    let (short, short_allocs) = run(&mut arena, 64);
    let (long, long_allocs) = run(&mut arena, 128);

    assert_eq!(
        short_allocs,
        long_allocs,
        "simulating 64 extra steady-state iterations allocated \
         {} extra times (short run {short_allocs}, long run {long_allocs})",
        long_allocs.saturating_sub(short_allocs),
    );
    assert!(short.epoch_time > SimDuration::ZERO);
    assert!(long.epoch_time > SimDuration::ZERO);

    // With everything warm, arena-reusing epochs are cheap in absolute
    // terms too: construction + reporting only.
    assert!(
        short_allocs < 200,
        "warm epoch allocated {short_allocs} times — construction got expensive"
    );
}
