//! Golden test for the Chrome-trace exporter: a fixed, fully
//! deterministic run must export byte-identical JSON across repeats,
//! the JSON must parse, and every span's B/E pair must nest correctly
//! per track (checked by the same validator the CLI uses).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::RefCell;
use std::rc::Rc;

use stash::prelude::*;
use stash::trace::chrome;

fn golden_events() -> Vec<(u32, TraceEvent)> {
    // Small model, sampled epoch: the simulator is seed-free and fully
    // deterministic, so this is a fixed input by construction.
    let mut cfg =
        TrainConfig::synthetic(ClusterSpec::single(p3_8xlarge()), zoo::alexnet(), 8, 8 * 3);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 3 };
    cfg.data = DataMode::Real {
        dataset: DatasetSpec::imagenet1k(),
        cache: CacheState::Warm,
    };

    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    run_epoch_traced(&cfg, &tracer).expect("golden run");
    let events = sink.borrow().events().to_vec();
    events
}

#[test]
fn chrome_export_is_deterministic_and_well_nested() {
    let a = serde_json::to_string_pretty(&chrome::export(&golden_events())).unwrap();
    let b = serde_json::to_string_pretty(&chrome::export(&golden_events())).unwrap();
    assert_eq!(a, b, "export is not deterministic across identical runs");

    let stats = chrome::validate(&a).expect("exported JSON must parse and nest");
    assert!(stats.spans > 0, "golden trace has no spans");
    assert!(stats.tracks > 1, "expected gpu + loader + flow tracks");

    // Spot-check the document shape beyond what the validator asserts.
    let doc: serde_json::Value = serde_json::from_str(&a).unwrap();
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let phases: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
        .collect();
    for required in ["M", "B", "E", "i", "C"] {
        assert!(
            phases.contains(&required),
            "no '{required}' events in golden trace"
        );
    }
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for span in ["forward", "backward", "step", "allreduce", "prep"] {
        assert!(
            names.contains(&span),
            "span '{span}' missing from golden trace"
        );
    }
}

#[test]
fn validator_rejects_corrupted_traces() {
    let text = serde_json::to_string(&chrome::export(&golden_events())).unwrap();
    // Flip every E into a B: nesting is now hopelessly unbalanced.
    let broken = text.replace("\"ph\":\"E\"", "\"ph\":\"B\"");
    assert!(
        chrome::validate(&broken).is_err(),
        "validator accepted unbalanced spans"
    );
}
