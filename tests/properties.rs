//! Property-based tests on core invariants (proptest).
//!
//! Covers the load-bearing data structures: the max-min fair allocator,
//! the deterministic event queue, gradient bucketing, the page cache, the
//! time types and the end-to-end engine's determinism and monotonicity.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use stash::prelude::*;

// ---------------------------------------------------------------- flowsim

proptest! {
    /// Max-min rates never overload any link and never starve any flow
    /// with a non-empty route.
    #[test]
    fn max_min_is_feasible_and_starvation_free(
        caps in prop::collection::vec(1.0_f64..1e6, 1..6),
        raw_routes in prop::collection::vec(prop::collection::vec(0_usize..6, 1..4), 1..10),
    ) {
        let n_links = caps.len();
        let routes: Vec<Vec<usize>> = raw_routes
            .into_iter()
            .map(|r| r.into_iter().map(|l| l % n_links).collect())
            .collect();
        let rates = max_min_rates(&caps, &routes);
        prop_assert_eq!(rates.len(), routes.len());
        for (l, &cap) in caps.iter().enumerate() {
            let load: f64 = routes
                .iter()
                .zip(&rates)
                .filter(|(r, _)| r.contains(&l))
                .map(|(_, rate)| *rate)
                .sum();
            prop_assert!(load <= cap * (1.0 + 1e-9), "link {} overloaded: {} > {}", l, load, cap);
        }
        for r in &rates {
            prop_assert!(*r > 0.0, "starved flow");
        }
    }

    /// Adding a flow to a link never increases any existing flow's rate
    /// on that link's exclusive users... weaker, global property: total
    /// delivered capacity never decreases when a flow is added.
    #[test]
    fn max_min_total_rate_monotone_in_flows(
        cap in 1.0_f64..1e6,
        n in 1_usize..10,
    ) {
        let routes_n: Vec<Vec<usize>> = (0..n).map(|_| vec![0]).collect();
        let routes_n1: Vec<Vec<usize>> = (0..=n).map(|_| vec![0]).collect();
        let total_n: f64 = max_min_rates(&[cap], &routes_n).iter().sum();
        let total_n1: f64 = max_min_rates(&[cap], &routes_n1).iter().sum();
        prop_assert!(total_n1 >= total_n - 1e-9);
        prop_assert!((total_n - cap).abs() < 1e-6);
    }
}

// ----------------------------------------------------------------- simkit

proptest! {
    /// The event queue delivers every non-cancelled event exactly once, in
    /// non-decreasing time order, with FIFO tie-breaking.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0_u64..1000, 1..100)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(*t), i);
        }
        let mut delivered = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last);
            // FIFO on ties: same-time events arrive in insertion order.
            if let Some(&(lt, li)) = delivered.last() {
                if lt == t.as_nanos() {
                    prop_assert!(li < i);
                }
            }
            delivered.push((t.as_nanos(), i));
            last = t;
        }
        prop_assert_eq!(delivered.len(), times.len());
    }

    /// Duration arithmetic: sums round-trip through seconds within 1 ns
    /// per operation.
    #[test]
    fn duration_seconds_roundtrip(ns in 0_u64..10_000_000_000) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        let diff = back.as_nanos().abs_diff(d.as_nanos());
        prop_assert!(diff <= 1_000, "{} vs {}", back.as_nanos(), d.as_nanos());
    }

    /// The deterministic RNG produces identical streams for identical
    /// seeds and `next_below` stays in range.
    #[test]
    fn rng_determinism(seed in any::<u64>(), bound in 1_u64..1_000_000) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..32 {
            let x = a.next_below(bound);
            prop_assert_eq!(x, b.next_below(bound));
            prop_assert!(x < bound);
        }
    }
}

// ------------------------------------------------------------ collectives

proptest! {
    /// Bucket plans partition the layer list exactly, in reverse order,
    /// and conserve gradient bytes — for any size cap.
    #[test]
    fn bucketing_partitions_layers(cap_mb in 1.0_f64..64.0, model_idx in 0_usize..8) {
        let model = &zoo::all_models()[model_idx].0;
        for bucketing in [Bucketing::PerLayer, Bucketing::BySize { bytes: cap_mb * 1e6 }] {
            let plan = CommPlan::new(model, bucketing);
            let mut hi = model.layers.len();
            for b in &plan.buckets {
                prop_assert_eq!(b.layer_range.1, hi);
                prop_assert!(b.layer_range.0 < b.layer_range.1);
                hi = b.layer_range.0;
            }
            prop_assert_eq!(hi, 0);
            let total: f64 = plan.buckets.iter().map(|b| b.bytes).sum();
            prop_assert!((total - model.gradient_bytes()).abs() < 1.0);
        }
    }
}

// --------------------------------------------------------------- datapipe

proptest! {
    /// The page cache's error-diffusion hit pattern realizes its hit
    /// fraction exactly over long windows.
    #[test]
    fn cache_hit_fraction_is_exact(mem_gb in 1.0_f64..1000.0, data_gb in 1.0_f64..1000.0) {
        let mut cache = PageCache::new(CacheState::Warm, mem_gb * 1e9, data_gb * 1e9);
        let f = cache.hit_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        let n = 10_000;
        let hits = (0..n).filter(|_| cache.next_is_hit()).count();
        prop_assert!((hits as f64 - n as f64 * f).abs() <= 1.0);
    }
}

// -------------------------------------------------------------------- dnn

proptest! {
    /// Parameter normalization hits any positive target exactly and
    /// preserves layer structure.
    #[test]
    fn param_normalization_exact(target in 1_000_u64..1_000_000_000, model_idx in 0_usize..8) {
        let model = zoo::all_models()[model_idx].0.clone();
        let layer_count = model.layer_count();
        let trainable = model.trainable_layer_count();
        let scaled = model.with_params_normalized_to(target);
        prop_assert_eq!(scaled.param_count(), target);
        prop_assert_eq!(scaled.layer_count(), layer_count);
        // Trainable layers can only be lost if a layer rounds to zero
        // params, which the largest-layer fixup prevents for the total.
        prop_assert!(scaled.trainable_layer_count() <= trainable);
    }

    /// Synthetic ResNets: deeper always means more layers, more params,
    /// more FLOPs.
    #[test]
    fn resnet_depth_monotone(pair in prop::sample::subsequence(vec![18usize, 34, 50, 101, 152], 2)) {
        let (a, b) = (resnet(pair[0]), resnet(pair[1]));
        prop_assert!(a.trainable_layer_count() < b.trainable_layer_count());
        prop_assert!(a.flops_fwd() < b.flops_fwd());
    }
}

// ----------------------------------------------------------------- engine

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// The engine is deterministic and its epoch time scales (weakly)
    /// monotonically with the per-GPU batch for synthetic training.
    #[test]
    fn engine_deterministic_and_batch_monotone(batch_exp in 0_u32..3) {
        let batch = 16_u64 << batch_exp;
        let mk = |b: u64| {
            let mut cfg = TrainConfig::synthetic(
                ClusterSpec::single(p3_8xlarge()),
                zoo::alexnet(),
                b,
                b * 8,
            );
            cfg.epoch_mode = EpochMode::Sampled { iterations: 2 };
            run_epoch(&cfg).unwrap()
        };
        let a = mk(batch);
        let b = mk(batch);
        prop_assert_eq!(a.epoch_time, b.epoch_time);
        let doubled = mk(batch * 2);
        // More samples per iteration on the same hardware: the iteration
        // takes longer (epoch covers batch*8 samples in both cases, so
        // compare per-iteration time = epoch_time / iterations).
        let per_iter = a.epoch_time.as_secs_f64() / a.iterations as f64;
        let per_iter_doubled = doubled.epoch_time.as_secs_f64() / doubled.iterations as f64;
        prop_assert!(per_iter_doubled >= per_iter);
    }
}

// ----------------------------------------------------- trace critical path

/// Builds a `(process, event)` trace from raw triples: GPU spans (with a
/// rotating category) on rank 0's lane, `allreduce` spans on the comm
/// lane, `prep` spans on a node-0 loader lane.
fn build_trace(
    gpu: &[(u64, u64, u8)],
    comm: &[(u64, u64)],
    prep: &[(u64, u64)],
) -> Vec<(u32, TraceEvent)> {
    let g = Track::gpu(0, 0);
    let mut events = Vec::new();
    for (i, &(s, len, which)) in gpu.iter().enumerate() {
        let (category, name) = match which {
            0 => (Category::Compute, "backward"),
            1 => (Category::Fetch, "await_batch"),
            _ => (Category::Network, "await_comm"),
        };
        events.push((
            0,
            TraceEvent::Span {
                track: g,
                category,
                name,
                arg: i as u32,
                start: SimTime::from_nanos(s),
                end: SimTime::from_nanos(s + len),
            },
        ));
    }
    for (i, &(s, len)) in comm.iter().enumerate() {
        events.push((
            0,
            TraceEvent::Span {
                track: Track::comm(),
                category: Category::Network,
                name: "allreduce",
                arg: i as u32,
                start: SimTime::from_nanos(s),
                end: SimTime::from_nanos(s + len),
            },
        ));
    }
    for &(s, len) in prep {
        events.push((
            0,
            TraceEvent::Span {
                track: Track::loader(0, 0),
                category: Category::Prep,
                name: "prep",
                arg: 0,
                start: SimTime::from_nanos(s),
                end: SimTime::from_nanos(s + len),
            },
        ));
    }
    events
}

proptest! {
    /// The decomposition tiles `[0, wall]` exactly: the path length never
    /// exceeds the traced wall time, the per-category integer-ns totals
    /// sum to it with no rounding loss, and the segment list is gap-free
    /// and in order.
    #[test]
    fn critical_path_tiles_the_wall_exactly(
        gpu in prop::collection::vec((0_u64..10_000, 1_u64..500, 0_u8..3), 1..40),
        comm in prop::collection::vec((0_u64..10_000, 1_u64..500), 0..10),
        prep in prop::collection::vec((0_u64..10_000, 1_u64..500), 0..10),
    ) {
        let events = build_trace(&gpu, &comm, &prep);
        let cp = CriticalPath::from_events(&events, 0, Track::gpu(0, 0));

        prop_assert!(cp.path_len_ns() <= cp.wall_ns, "path exceeds wall");
        let by_category: u64 = PathCategory::ALL.iter().map(|&c| cp.total_ns(c)).sum();
        prop_assert_eq!(by_category, cp.wall_ns, "category totals lose nanoseconds");
        prop_assert_eq!(cp.path_len_ns(), cp.wall_ns);

        let mut cursor = 0;
        for seg in &cp.segments {
            prop_assert_eq!(seg.start_ns, cursor, "gap or overlap in segments");
            prop_assert!(seg.end_ns > seg.start_ns, "empty segment");
            cursor = seg.end_ns;
        }
        prop_assert_eq!(cursor, cp.wall_ns);
    }

    /// What-if projection at scale 1.0 is the identity, for every
    /// resource, on any decomposed trace.
    #[test]
    fn whatif_factor_one_is_identity(
        gpu in prop::collection::vec((0_u64..10_000, 1_u64..500, 0_u8..3), 1..40),
        comm in prop::collection::vec((0_u64..10_000, 1_u64..500), 0..10),
    ) {
        let events = build_trace(&gpu, &comm, &[]);
        let cp = CriticalPath::from_events(&events, 0, Track::gpu(0, 0));
        for resource in WhatIfResource::ALL {
            prop_assert_eq!(project(&cp, resource, 1.0), cp.wall_ns);
        }
    }

    /// Speeding a resource up never lengthens the projection; slowing it
    /// down never shortens it.
    #[test]
    fn whatif_projection_is_monotone_in_the_factor(
        gpu in prop::collection::vec((0_u64..10_000, 1_u64..500, 0_u8..3), 1..40),
        comm in prop::collection::vec((0_u64..10_000, 1_u64..500), 0..10),
        factor in 1.01_f64..8.0,
    ) {
        let events = build_trace(&gpu, &comm, &[]);
        let cp = CriticalPath::from_events(&events, 0, Track::gpu(0, 0));
        for resource in WhatIfResource::ALL {
            prop_assert!(project(&cp, resource, factor) <= cp.wall_ns);
            prop_assert!(project(&cp, resource, 1.0 / factor) >= cp.wall_ns);
        }
    }
}

// ----------------------------------------------------------------- hwtopo

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `InstanceType::validate` accepts exactly the specs whose numeric
    /// fields are sane: the frozen Table I catalog always passes, and a
    /// single hostile field (NaN, infinity, zero or negative) is caught —
    /// both directly and through `ClusterSpec::validate`.
    #[test]
    fn hostile_instance_fields_are_rejected(
        idx in 0_usize..8,
        field in 0_usize..5,
        kind in 0_usize..6,
        magnitude in 1.0e-3_f64..1.0e12,
    ) {
        let value = match kind {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -magnitude,
            _ => magnitude,
        };
        let mut inst = catalog()[idx].clone();
        prop_assert!(inst.validate().is_ok(), "catalog instance must be valid");
        let expect_ok = match field {
            0 => { inst.main_memory_bytes = value; value.is_finite() && value > 0.0 }
            1 => { inst.network_gbps = value; value.is_finite() && value > 0.0 }
            2 => { inst.interconnect_scale = value; value.is_finite() && value > 0.0 }
            3 => { inst.storage.throughput_bps = value; value.is_finite() && value > 0.0 }
            _ => { inst.price_per_hour = value; value.is_finite() && value >= 0.0 }
        };
        prop_assert_eq!(inst.validate().is_ok(), expect_ok);
        if !expect_ok {
            prop_assert!(ClusterSpec::single(inst).validate().is_err());
        }
    }
}
