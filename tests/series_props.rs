//! Property-based tests of the iteration-series downsampler: pair-merging
//! may only coarsen the time axis, never the books. For arbitrary sample
//! streams the recorder must preserve integer-ns category sums exactly,
//! keep bucket timestamps contiguous and monotone, respect its capacity
//! bound, and serialize byte-identically for identical inputs (which is
//! what makes `stash-series-v1` artifacts diffable in CI).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use stash::telemetry::series::{
    IterSeries, SeriesMeta, SeriesRecorder, SeriesSample, MIN_CAPACITY,
};

/// Raw per-iteration observations: ((wall, compute, data), (comm,
/// recomputes, queue high-water)). Nested pairs keep the tuple arity
/// within what the vendored proptest implements `Strategy` for.
type Raw = ((u64, u64, u64), (u64, u64, u64));

fn raw_iters() -> impl Strategy<Value = Vec<Raw>> {
    prop::collection::vec(
        (
            (1_000u64..5_000_000, 0u64..2_000_000, 0u64..1_000_000),
            (0u64..1_000_000, 0u64..4, 0u64..64),
        ),
        1..300,
    )
}

/// Replays `raws` as contiguous per-iteration samples into a recorder of
/// the given capacity; every `ff_every`-th sample (if nonzero) becomes a
/// compressed fast-forward region of 10 iterations.
fn replay(raws: &[Raw], capacity: usize, ff_every: usize) -> IterSeries {
    let mut rec = SeriesRecorder::with_capacity(capacity);
    let mut now = 0u64;
    let mut iter = 0u64;
    for (i, &((wall, compute, data), (comm, recomputes, qd))) in raws.iter().enumerate() {
        let ff = if ff_every > 0 && i % ff_every == ff_every - 1 {
            10
        } else {
            0
        };
        let iters = if ff > 0 { ff } else { 1 };
        rec.record(SeriesSample {
            start_iter: iter,
            iterations: iters,
            ff_iterations: ff,
            start_ns: now,
            wall_ns: wall,
            compute_ns: compute as i64,
            data_wait_ns: data as i64,
            comm_wait_ns: comm as i64,
            recovery_ns: 0,
            straggler_ns: 0,
            recomputes,
            queue_depth_hw: qd,
        });
        now += wall;
        iter += iters;
    }
    rec.finish(now)
}

fn naive_sums(raws: &[Raw], ff_every: usize) -> (u64, u64, i64, i64, i64, u64, u64) {
    let mut iters = 0u64;
    let mut wall = 0u64;
    let (mut compute, mut data, mut comm) = (0i64, 0i64, 0i64);
    let mut recomputes = 0u64;
    let mut qd_max = 0u64;
    for (i, &((w, c, d), (m, r, q))) in raws.iter().enumerate() {
        iters += if ff_every > 0 && i % ff_every == ff_every - 1 {
            10
        } else {
            1
        };
        wall += w;
        compute += c as i64;
        data += d as i64;
        comm += m as i64;
        recomputes += r;
        qd_max = qd_max.max(q);
    }
    (iters, wall, compute, data, comm, recomputes, qd_max)
}

fn meta() -> SeriesMeta {
    SeriesMeta {
        cluster: "1 x p3.8xlarge".to_string(),
        model: "resnet18".to_string(),
        world: 4,
        per_gpu_batch: 32,
        iterations: 64,
        simulated_iterations: 64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However many merge rounds the capacity forces, the series totals
    /// equal the naive input sums at integer-ns exactness, and the
    /// per-bucket queue high-water never exceeds (and collectively
    /// reaches) the true maximum.
    #[test]
    fn downsampling_preserves_exact_sums(
        raws in raw_iters(),
        capacity in MIN_CAPACITY..64usize,
        ff_every in 0usize..7,
    ) {
        let series = replay(&raws, capacity, ff_every);
        let (iters, wall, compute, data, comm, recomputes, qd_max) =
            naive_sums(&raws, ff_every);
        let t = series.totals();
        prop_assert_eq!(t.iterations, iters);
        prop_assert_eq!(t.wall_ns, wall);
        prop_assert_eq!(t.compute_ns, compute);
        prop_assert_eq!(t.data_wait_ns, data);
        prop_assert_eq!(t.comm_wait_ns, comm);
        prop_assert_eq!(t.recovery_ns, 0);
        prop_assert_eq!(t.recomputes, recomputes);
        let bucket_max = series.samples.iter().map(|s| s.queue_depth_hw).max();
        prop_assert_eq!(bucket_max, Some(qd_max));
    }

    /// Buckets stay contiguous (each starts where the previous ended),
    /// start iterations are non-decreasing, and the bucket count respects
    /// the capacity bound no matter how many samples stream in.
    #[test]
    fn buckets_are_monotone_contiguous_and_bounded(
        raws in raw_iters(),
        capacity in MIN_CAPACITY..64usize,
    ) {
        let series = replay(&raws, capacity, 0);
        // with_capacity clamps to an even value >= MIN_CAPACITY.
        let cap = capacity.max(MIN_CAPACITY) & !1;
        prop_assert!(series.samples.len() <= cap,
            "{} buckets exceed capacity {cap}", series.samples.len());
        let mut now = 0u64;
        let mut iter = 0u64;
        for (i, s) in series.samples.iter().enumerate() {
            prop_assert_eq!(s.start_ns, now, "bucket {} not contiguous", i);
            prop_assert!(s.start_iter >= iter, "bucket {} iter regressed", i);
            now += s.wall_ns;
            iter = s.start_iter;
        }
        prop_assert_eq!(series.end_ns, now);
    }

    /// Identical input streams serialize byte-identically, and the JSON
    /// round-trips losslessly through `from_json` — samples, annotations
    /// and metadata all survive.
    #[test]
    fn serialization_is_byte_stable_and_round_trips(
        raws in raw_iters(),
        capacity in MIN_CAPACITY..64usize,
    ) {
        let a = replay(&raws, capacity, 3);
        let b = replay(&raws, capacity, 3);
        let m = meta();
        let ja = serde_json::to_string_pretty(&a.to_json(&m))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let jb = serde_json::to_string_pretty(&b.to_json(&m))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&ja, &jb, "same input, different bytes");
        prop_assert_eq!(a.to_csv(), b.to_csv());

        let doc = serde_json::from_str(&ja)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let (m2, back) = IterSeries::from_json(&doc)
            .map_err(TestCaseError::fail)?;
        prop_assert_eq!(m2.cluster, m.cluster);
        prop_assert_eq!(m2.world, m.world);
        prop_assert_eq!(back.samples, a.samples);
        prop_assert_eq!(back.annotations, a.annotations);
        prop_assert_eq!(back.end_ns, a.end_ns);
    }

    /// Correction samples (zero-width, possibly negative categories, as
    /// emitted after a checkpoint rollback) fold into the books without
    /// breaking sum preservation or contiguity.
    #[test]
    fn corrections_fold_into_the_books(
        raws in raw_iters(),
        capacity in MIN_CAPACITY..32usize,
        rebill in 1_000i64..1_000_000,
    ) {
        let mut rec = SeriesRecorder::with_capacity(capacity);
        let mut now = 0u64;
        let mut compute = 0i64;
        let mut recovery = 0i64;
        for (i, &((wall, c, _), _)) in raws.iter().enumerate() {
            rec.record(SeriesSample {
                start_iter: i as u64,
                iterations: 1,
                start_ns: now,
                wall_ns: wall,
                compute_ns: c as i64,
                ..SeriesSample::default()
            });
            now += wall;
            compute += c as i64;
            if i % 5 == 4 {
                // A replay rewind: compute rebilled to recovery.
                rec.record(SeriesSample {
                    start_iter: i as u64,
                    iterations: 0,
                    start_ns: now,
                    compute_ns: -rebill,
                    recovery_ns: rebill,
                    ..SeriesSample::default()
                });
                compute -= rebill;
                recovery += rebill;
            }
        }
        let series = rec.finish(now);
        let t = series.totals();
        prop_assert_eq!(t.compute_ns, compute);
        prop_assert_eq!(t.recovery_ns, recovery);
        prop_assert_eq!(t.wall_ns, now);
        prop_assert_eq!(t.iterations, raws.len() as u64);
    }
}
