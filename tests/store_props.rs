//! Property tests for the `stash-store` durability layer: the record
//! frame and the fault-injected store round-trip admit exactly two
//! outcomes — the original bytes, or a *typed* detected-corruption.
//! There is no third outcome: a read must never hand back bytes that
//! differ from what was stored without flagging them.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use stash::store::frame::{decode, encode, HEADER_LEN};
use stash::store::prelude::*;
use stash::store::{fnv128, key_hex};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh per-case scratch directory (unique across parallel tests).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stash_store_props_{tag}_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn payloads() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..255, 0..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode -> decode is the identity for arbitrary payloads.
    #[test]
    fn frame_round_trips(payload in payloads()) {
        let framed = encode(&payload);
        prop_assert_eq!(framed.len(), HEADER_LEN + payload.len());
        prop_assert_eq!(decode(&framed).unwrap(), payload);
    }

    /// Any single corrupted byte anywhere in the frame — header or
    /// payload — is detected. No flip may survive decode.
    #[test]
    fn any_single_byte_flip_is_detected(
        payload in payloads(),
        pos_seed in 0usize..10_000,
        flip in 1u8..255,
    ) {
        let mut framed = encode(&payload);
        let pos = pos_seed % framed.len();
        framed[pos] ^= flip;
        prop_assert!(
            decode(&framed).is_err(),
            "flip of byte {} by {:#04x} went undetected", pos, flip
        );
    }

    /// Every truncation of a frame is detected, as is trailing garbage.
    #[test]
    fn truncation_and_growth_are_detected(
        payload in payloads(),
        cut_seed in 0usize..10_000,
        extra in 1usize..16,
    ) {
        let framed = encode(&payload);
        let cut = cut_seed % framed.len();
        prop_assert!(decode(&framed[..cut]).is_err(), "cut at {} undetected", cut);
        let mut grown = framed.clone();
        grown.extend(std::iter::repeat_n(0xA5, extra));
        prop_assert!(decode(&grown).is_err(), "{} trailing bytes undetected", extra);
    }

    /// Under an arbitrary seeded fault plan, a store round-trip has only
    /// two outcomes: the exact original payload, or a typed non-hit
    /// (miss after quarantine / quarantined-corrupt). Retried writes
    /// converge, and convergence means byte-identity.
    #[test]
    fn faulted_store_round_trip_has_no_third_outcome(
        payload in payloads(),
        seed in 0u64..1_000_000,
    ) {
        let root = scratch("faulted");
        let store = ResultStore::open(
            &root,
            Box::new(FaultFs::new(IoFaultPlan::seeded(seed))),
        )
        .unwrap();
        let key = fnv128(&payload) ^ u128::from(seed);
        let policy = RetryPolicy::default();

        // Seeded plans contain only recoverable faults, so the retried
        // put must land.
        with_retry(&policy, || {
            store.put(key, &payload).map_err(std::io::Error::other)
        })
        .unwrap();

        // Reads may trip planned ShortRead faults and spuriously
        // quarantine, but may never return different bytes as a Hit.
        // Every fault fires exactly once, so detect-and-re-put converges
        // to a verified hit well within the plan's operation horizon.
        let mut verified = false;
        for _ in 0..24 {
            match with_retry(&policy, || store.get(key).map_err(std::io::Error::other)) {
                Ok(Fetch::Hit(bytes)) => {
                    prop_assert_eq!(
                        &bytes, &payload, "hit returned different bytes for {}", key_hex(key)
                    );
                    verified = true;
                    break;
                }
                Ok(Fetch::Quarantined { .. } | Fetch::Miss) => {
                    // Typed detection; re-put converges the store.
                    with_retry(&policy, || {
                        store.put(key, &payload).map_err(std::io::Error::other)
                    })
                    .unwrap();
                }
                Err(reason) => prop_assert!(false, "retries exhausted: {}", reason),
            }
        }
        prop_assert!(verified, "store never converged to a verified hit");
        let _ = std::fs::remove_dir_all(&root);
    }
}
