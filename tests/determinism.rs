//! Cross-crate determinism guarantee: the parallel executor and the
//! measurement cache are pure performance features. Serial, parallel and
//! cache-warm profiles of the same configuration must produce bit-identical
//! stall reports — any float-level drift here would silently corrupt every
//! figure the bench harness regenerates.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash::prelude::*;

fn stash_under_test() -> Stash {
    Stash::new(zoo::resnet50())
        .with_batch(32)
        .with_dataset(DatasetSpec::imagenet1k())
        .with_sampled_iterations(3)
}

#[test]
fn serial_parallel_and_cached_profiles_are_bit_identical() {
    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let stash = stash_under_test();

    let serial = stash.profile_serial(&cluster).expect("serial profile");
    let parallel = stash.profile(&cluster).expect("parallel profile");
    assert_eq!(
        serial, parallel,
        "parallel executor must match serial bit-for-bit"
    );

    let cache = MeasurementCache::new();
    let cold = stash
        .profile_cached(&cluster, &cache)
        .expect("cold cached profile");
    assert_eq!(
        serial, cold,
        "cache-miss path must match serial bit-for-bit"
    );
    let misses_after_cold = cache.stats().misses;
    assert!(misses_after_cold > 0, "cold run must populate the cache");

    let warm = stash
        .profile_cached(&cluster, &cache)
        .expect("warm cached profile");
    assert_eq!(serial, warm, "cache-hit path must match serial bit-for-bit");
    let stats = cache.stats();
    assert_eq!(
        stats.misses, misses_after_cold,
        "warm run must not re-simulate"
    );
    assert!(
        stats.hits >= misses_after_cold,
        "warm run must be served from the cache"
    );
}

#[test]
fn par_profile_many_matches_individual_profiles() {
    let clusters = [
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
    ];
    let jobs: Vec<ProfileJob> = clusters
        .iter()
        .map(|c| ProfileJob {
            stash: stash_under_test(),
            cluster: c.clone(),
        })
        .collect();
    let cache = MeasurementCache::new();
    let fanned = par_profile_many(&jobs, Some(&cache));
    for (job, got) in jobs.iter().zip(&fanned) {
        let want = job
            .stash
            .profile_serial(&job.cluster)
            .expect("serial profile");
        assert_eq!(
            got.as_ref().expect("fanned profile"),
            &want,
            "fan-out result for {} must match serial",
            job.cluster.display_name()
        );
    }
}
